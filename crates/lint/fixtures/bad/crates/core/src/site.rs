//! Seeded violations: wall clock, unordered iteration, bare unwrap.

fn demux(tag: u8) {
    let _ = tag == TAG_RUN_STAGE || tag == TAG_RESULT || tag == TAG_ERROR;
}

fn busy(work: fn()) -> u128 {
    let t = std::time::Instant::now();
    work();
    t.elapsed().as_micros()
}

fn encode(groups: &HashMap<String, u64>, out: &mut Vec<u8>) {
    for (k, v) in groups.iter() {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
