//! Seeded violation: `ghost_knob` is wired nowhere.

/// Knobs.
pub struct EvalOptions {
    /// Wired everywhere.
    pub parallelism: usize,
    /// Missing from the codec, the env, and the CLI.
    pub ghost_knob: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            parallelism: env_usize("SKALLA_THREADS").unwrap_or(0),
            ghost_knob: false,
        }
    }
}
