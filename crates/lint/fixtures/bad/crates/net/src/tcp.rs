//! Seeded violation: a NetStats record site with no tag classification.

fn send(msg: &Msg, stats: &NetStats) {
    stats.record_msg_for(msg);
}
