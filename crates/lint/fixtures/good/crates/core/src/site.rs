//! Clean site code: CPU timer, sorted iteration, no panics.

fn demux(tag: u8) {
    let _ = tag == TAG_RUN_STAGE || tag == TAG_RESULT || tag == TAG_TELEMETRY;
}

fn encode(groups: &HashMap<String, u64>, out: &mut Vec<u8>) {
    let mut keys: Vec<&String> = groups.keys().collect(); // lint: allow(unordered-iter) sorted on the next line
    keys.sort();
    for k in keys {
        out.extend_from_slice(k.as_bytes());
    }
}

fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
