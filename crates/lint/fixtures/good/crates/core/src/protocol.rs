//! A consistent registry: documented, unique, handled, catalogued.

/// Run one stage.
pub const TAG_RUN_STAGE: u8 = 1;
/// A sub-result chunk.
pub const TAG_RESULT: u8 = 2;
/// Telemetry (alias of the transport constant).
pub const TAG_TELEMETRY: u8 = skalla_net::TELEMETRY_TAG;
