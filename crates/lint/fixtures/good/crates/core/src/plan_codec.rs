//! Fixture codec: every knob is encoded.

fn put_options(o: &EvalOptions, enc: &mut Encoder) {
    enc.put_u32(o.parallelism as u32);
    enc.put_bool(o.cache);
}
