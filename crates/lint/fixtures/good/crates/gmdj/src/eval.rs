//! Fully wired knobs.

/// Knobs.
pub struct EvalOptions {
    /// Worker threads.
    pub parallelism: usize,
    /// Semantic result cache.
    pub cache: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            parallelism: env_usize("SKALLA_THREADS").unwrap_or(0),
            cache: env_flag("SKALLA_CACHE").unwrap_or(true),
        }
    }
}
