//! Fully wired knobs.

/// Knobs.
pub struct EvalOptions {
    /// Worker threads.
    pub parallelism: usize,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            parallelism: env_usize("SKALLA_THREADS").unwrap_or(0),
        }
    }
}
