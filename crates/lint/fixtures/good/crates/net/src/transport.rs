//! Fixture transport constants.

/// Transport-reserved telemetry tag.
pub const TELEMETRY_TAG: u8 = 9;
