//! A classified record site: telemetry is explicitly exempt.

fn send(msg: &Msg, stats: &NetStats) {
    if msg.tag != crate::transport::TELEMETRY_TAG {
        stats.record_msg_for(msg);
    }
}
