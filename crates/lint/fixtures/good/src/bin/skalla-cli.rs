//! Fixture CLI: every knob has a flag.

fn flags(e: &mut EvalOptions) {
    e.parallelism = 4;
    e.cache = false;
}
