//! Fixture-driven self-tests: every rule must fire on the seeded
//! violations under `fixtures/bad/` and stay silent on the clean mirror
//! under `fixtures/good/` — and the real repository must pass with
//! nothing beyond the frozen panic-hygiene baseline.

use skalla_lint::baseline::Baseline;
use skalla_lint::workspace::Workspace;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Workspace {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    Workspace::load(&root).expect("fixture tree loads")
}

#[test]
fn every_rule_fires_on_the_bad_fixture() {
    let diags = skalla_lint::run_all(&fixture("bad"));
    for (rule, _) in skalla_lint::rules::ALL_RULES {
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "rule `{rule}` did not fire on fixtures/bad; diagnostics: {:#?}",
            diags
        );
    }
}

#[test]
fn bad_fixture_findings_are_the_seeded_ones() {
    let diags = skalla_lint::run_all(&fixture("bad"));
    let has = |rule: &str, frag: &str| {
        diags
            .iter()
            .any(|d| d.rule == rule && d.message.contains(frag))
    };
    // protocol-registry: each failure mode seeded once.
    assert!(has("protocol-registry", "no rustdoc"), "{diags:#?}");
    assert!(has("protocol-registry", "reuses tag value 1"), "{diags:#?}");
    assert!(has("protocol-registry", "TAG_GHOST"), "{diags:#?}");
    assert!(has("protocol-registry", "no tag-classifying guard"), "{diags:#?}");
    assert!(has("protocol-registry", "WRONG_NAME"), "{diags:#?}");
    assert!(has("protocol-registry", "lists tag 9"), "{diags:#?}");
    assert!(has("protocol-registry", "missing tag 7"), "{diags:#?}");
    // knob-wiring: ghost_knob is missing from all three surfaces.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.rule == "knob-wiring" && d.message.contains("ghost_knob"))
            .count(),
        3,
        "{diags:#?}"
    );
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == "knob-wiring" && d.message.contains("`EvalOptions::parallelism`")),
        "parallelism is fully wired in the fixture: {diags:#?}"
    );
    // Determinism and panic hygiene.
    assert!(has("wall-clock", "Instant::now"), "{diags:#?}");
    assert!(has("unordered-iter", "`groups`"), "{diags:#?}");
    assert!(has("panic-hygiene", "`unwrap`"), "{diags:#?}");
}

#[test]
fn good_fixture_is_clean() {
    let diags = skalla_lint::run_all(&fixture("good"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn real_repository_passes_with_the_checked_in_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("repo loads");
    let diags = skalla_lint::run_all(&ws);
    let text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("lint-baseline.txt is checked in");
    let base = Baseline::parse(&text).expect("baseline parses");
    let filtered = base.filter(&ws, diags);
    assert!(
        filtered.kept.is_empty(),
        "the repository violates its own invariants:\n{}",
        filtered
            .kept
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The baseline freezes only panic-hygiene; everything else is strict
    // (no stale entries hiding behind other rules).
    assert!(
        text.lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .all(|l| l.starts_with("panic-hygiene\t")),
        "baseline must only carry panic-hygiene entries"
    );
}

#[test]
fn fixture_trees_stay_out_of_the_production_walk() {
    // `Workspace::load` of the real repo must skip `fixtures/` — the
    // seeded violations would otherwise fail the real run.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("repo loads");
    assert!(
        ws.iter().all(|(p, _)| !Path::new(p)
            .components()
            .any(|c| c.as_os_str() == "fixtures")),
        "fixture files leaked into the production workspace walk"
    );
}
