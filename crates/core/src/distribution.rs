//! Distribution knowledge: what the coordinator knows about each site's
//! fragment of each fact relation.
//!
//! Each site *i*'s fragment of table *T* is described by a φ_i — a
//! [`DomainMap`] of per-column guarantees. From these the planner derives:
//!
//! * **¬ψ_i group-reduction filters** (Theorem 4), via
//!   [`skalla_relation::derive_base_constraint`];
//! * **partition attributes** (Definition 2): a column whose per-site
//!   domains are pairwise disjoint, enabling synchronization reduction
//!   (Theorem 5 / Corollary 1).

use skalla_relation::{Domain, DomainMap};
use std::collections::HashMap;

/// Per-site, per-table domain knowledge.
#[derive(Debug, Clone, Default)]
pub struct DistributionInfo {
    n_sites: usize,
    tables: HashMap<String, Vec<DomainMap>>,
}

impl DistributionInfo {
    /// Knowledge-free info for `n_sites` sites.
    pub fn new(n_sites: usize) -> DistributionInfo {
        DistributionInfo {
            n_sites,
            tables: HashMap::new(),
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Record the per-site φ maps for a table.
    ///
    /// # Panics
    /// Panics if `per_site.len() != n_sites`.
    pub fn set_table(&mut self, table: impl Into<String>, per_site: Vec<DomainMap>) {
        assert_eq!(
            per_site.len(),
            self.n_sites,
            "one DomainMap per site required"
        );
        self.tables.insert(table.into(), per_site);
    }

    /// φ_i for `table` at `site` (empty map when nothing is known).
    pub fn domains(&self, table: &str, site: usize) -> DomainMap {
        self.tables
            .get(table)
            .and_then(|v| v.get(site))
            .cloned()
            .unwrap_or_default()
    }

    /// Is `column` a partition attribute of `table` (Definition 2)?
    ///
    /// True when every site constrains the column and the domains are
    /// pairwise disjoint. (A hash-partitioned column may *be* a partition
    /// attribute physically, but without declared domains Skalla cannot
    /// prove it — exactly the situation the distribution-independent
    /// optimizations are for.)
    pub fn is_partition_attribute(&self, table: &str, column: &str) -> bool {
        let Some(sites) = self.tables.get(table) else {
            return false;
        };
        if sites.len() != self.n_sites || self.n_sites == 0 {
            return false;
        }
        let domains: Vec<&Domain> = sites.iter().map(|m| m.get(column)).collect();
        if domains.iter().any(|d| matches!(d, Domain::Any)) {
            return false;
        }
        for i in 0..domains.len() {
            for j in (i + 1)..domains.len() {
                if !domains[i].disjoint_from(domains[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// All declared partition attributes of a table.
    pub fn partition_attributes(&self, table: &str) -> Vec<String> {
        let Some(sites) = self.tables.get(table) else {
            return Vec::new();
        };
        let mut columns: Vec<String> = Vec::new();
        for m in sites {
            for c in m.constrained_columns() {
                if !columns.iter().any(|x| x == c) {
                    columns.push(c.to_string());
                }
            }
        }
        columns
            .into_iter()
            .filter(|c| self.is_partition_attribute(table, c))
            .collect()
    }

    /// Whether any knowledge is recorded for a table.
    pub fn knows_table(&self, table: &str) -> bool {
        self.tables.contains_key(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_relation::Value;

    fn info() -> DistributionInfo {
        let mut d = DistributionInfo::new(3);
        d.set_table(
            "t",
            vec![
                DomainMap::new()
                    .with("k", Domain::IntRange(0, 9))
                    .with("g", Domain::IntRange(0, 5)),
                DomainMap::new()
                    .with("k", Domain::IntRange(10, 19))
                    .with("g", Domain::IntRange(3, 8)),
                DomainMap::new()
                    .with("k", Domain::IntRange(20, 29))
                    .with("g", Domain::IntRange(9, 12)),
            ],
        );
        d
    }

    #[test]
    fn partition_attribute_requires_pairwise_disjoint() {
        let d = info();
        assert!(d.is_partition_attribute("t", "k"));
        // g overlaps between sites 0 and 1.
        assert!(!d.is_partition_attribute("t", "g"));
        // Unknown column: every site has Domain::Any.
        assert!(!d.is_partition_attribute("t", "other"));
        // Unknown table.
        assert!(!d.is_partition_attribute("u", "k"));
        assert_eq!(d.partition_attributes("t"), vec!["k".to_string()]);
    }

    #[test]
    fn set_domains_count_as_partition_attribute() {
        let mut d = DistributionInfo::new(2);
        d.set_table(
            "t",
            vec![
                DomainMap::new().with("name", Domain::of([Value::str("a"), Value::str("b")])),
                DomainMap::new().with("name", Domain::of([Value::str("c")])),
            ],
        );
        assert!(d.is_partition_attribute("t", "name"));
    }

    #[test]
    fn domains_default_to_empty() {
        let d = info();
        assert_eq!(d.domains("nope", 0), DomainMap::new());
        assert_eq!(d.domains("t", 99), DomainMap::new());
        assert!(d.knows_table("t"));
        assert!(!d.knows_table("nope"));
    }

    #[test]
    #[should_panic(expected = "one DomainMap per site")]
    fn wrong_site_count_panics() {
        let mut d = DistributionInfo::new(3);
        d.set_table("t", vec![DomainMap::new()]);
    }
}
