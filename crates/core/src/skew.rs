//! Skew-resilient distribution: heavy-hitter reports and per-key routing.
//!
//! Horizontal partitioning balances *rows*, not *work*: under a zipfian
//! group-key distribution one site can hold most of the detail tuples of
//! a handful of hot groups and become the straggler of every round, while
//! the paper's cost model (Sect. 5) assumes sites progress together.
//! This module adds a skew-aware variant of the group-reduction machinery
//! (Thm 4 ships *fewer* groups to a site; here the coordinator ships some
//! of a site's groups *elsewhere*):
//!
//! 1. **Detect** — during round 1 each site runs a deterministic
//!    space-saving sketch ([`skalla_gmdj::SpaceSaving`]) over its detail
//!    partition's key columns and reports its top hitters plus its local
//!    row count ([`HotReport`], wire tag
//!    [`crate::protocol::TAG_HH_REPORT`] — *counted* in the traffic
//!    accounting, unlike telemetry, because the report is part of the
//!    query protocol).
//! 2. **Decide** — the coordinator checks the plan is eligible
//!    ([`skew_eligible`]: every θ must entail key equality through one
//!    consistent detail-column mapping, so a detail row can only ever
//!    contribute to its own group) and computes a routing
//!    ([`plan_routing`]): hash-partitioned light tail stays put; hot
//!    groups of overloaded sites move to the least-loaded helpers, and a
//!    single group too hot for any one helper splits across several.
//! 3. **Rebalance** — per eligible stage the donor's hot base rows are
//!    removed from its fragment and shipped to the helpers instead; the
//!    donor extracts the matching detail rows grouped by morsel segment
//!    and loans them up; helpers evaluate each segment as one morsel and
//!    the coordinator merges the per-segment sub-aggregates back in the
//!    donor's morsel order, so the final result is **bit-identical** to
//!    the unbalanced run (the sketch is a load-balancing hint only).
//!
//! The ablation knob is `EvalOptions::skew_balance`
//! (`--no-skew-balance` / `SKALLA_SKEW=0`); `fig_skew` measures the
//! effect as max-site-busy vs the Zipf exponent.

use crate::plan::{DistributedPlan, StageKind};
use skalla_gmdj::theta::analyze_theta;
use skalla_gmdj::BaseQuery;
use skalla_relation::Value;

/// Capacity of the per-site space-saving sketch. Every key with local
/// frequency above `rows / SKETCH_CAPACITY` is guaranteed tracked.
pub const SKETCH_CAPACITY: usize = 64;

/// Maximum heavy hitters a site reports to the coordinator.
pub const REPORT_TOP: usize = 32;

/// A donor starts shedding groups when its row count exceeds the mean by
/// this factor.
pub const DONOR_THRESHOLD: f64 = 1.25;

/// One site's round-1 heavy-hitter report: its local detail row count
/// and the top sketch entries as `(group key, estimated count)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HotReport {
    /// Local detail rows of the skew-eligible table.
    pub rows: u64,
    /// Top hitters, descending by estimated count.
    pub hitters: Vec<(Vec<Value>, u64)>,
}

/// What makes a plan skew-balanceable, shared verbatim by coordinator and
/// sites (both derive it from the broadcast plan, so they always agree on
/// whether reports flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewSpec {
    /// The detail table whose key distribution is sketched.
    pub table: String,
    /// Detail column carrying each `plan.key` column's value, in key
    /// order (the consistent equi mapping every θ entails).
    pub detail_cols: Vec<String>,
    /// Indexes of the stages where hot groups may be rerouted.
    pub stages: Vec<usize>,
}

/// Decide whether (and where) a plan can be skew-balanced.
///
/// A stage qualifies when it is a non-folded, non-chained unit whose
/// every θ entails equality between each key column and one *consistent*
/// detail column: then a detail row can only contribute to the group
/// named by its own key columns, so extracting the hot-key detail rows
/// captures every tuple the moved base rows could match. All qualifying
/// stages must agree on `(table, detail columns)` — one sketch pass
/// serves them all. Requires a leading base round (the reports ride on
/// its synchronization) over a derivable base.
pub fn skew_eligible(plan: &DistributedPlan) -> Option<SkewSpec> {
    if !matches!(plan.expr.base, BaseQuery::DistinctProject { .. }) {
        return None;
    }
    if !matches!(plan.stages.first().map(|s| &s.kind), Some(StageKind::Base)) {
        return None;
    }
    let mut spec: Option<SkewSpec> = None;
    'stages: for (idx, stage) in plan.stages.iter().enumerate() {
        let StageKind::Unit(u) = &stage.kind else {
            continue;
        };
        if u.fold_base || u.local_chain {
            continue;
        }
        let mut mapping: Option<Vec<String>> = None;
        for op in &plan.expr.ops[u.ops.clone()] {
            for block in &op.blocks {
                let a = analyze_theta(&block.theta);
                let mut cols = Vec::with_capacity(plan.key.len());
                for k in &plan.key {
                    match a.equi.iter().find(|(b, _)| b == k) {
                        Some((_, d)) => cols.push(d.clone()),
                        None => continue 'stages,
                    }
                }
                match &mapping {
                    None => mapping = Some(cols),
                    Some(m) if *m == cols => {}
                    Some(_) => continue 'stages,
                }
            }
        }
        let Some(cols) = mapping else { continue };
        match &mut spec {
            None => {
                spec = Some(SkewSpec {
                    table: u.table.clone(),
                    detail_cols: cols,
                    stages: vec![idx],
                });
            }
            Some(s) if s.table == u.table && s.detail_cols == cols => s.stages.push(idx),
            Some(_) => {}
        }
    }
    spec
}

/// One hot group's routing: the group key and the helper sites that take
/// it over. A single helper takes the whole group; several helpers split
/// it, each receiving the detail segments with `segment % helpers.len()`
/// equal to its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The hot group key (in `plan.key` column order).
    pub key: Vec<Value>,
    /// Helper site ids, ascending.
    pub helpers: Vec<usize>,
}

/// The coordinator's routing decision: per site, the hot groups it
/// donates. Computed once after the base round and applied to every
/// eligible stage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SkewPlan {
    /// `assignments[site]` — empty for non-donors.
    pub assignments: Vec<Vec<Assignment>>,
}

impl SkewPlan {
    /// No site donates anything.
    pub fn is_trivial(&self) -> bool {
        self.assignments.iter().all(Vec::is_empty)
    }

    /// Number of donating sites.
    pub fn n_donors(&self) -> usize {
        self.assignments.iter().filter(|a| !a.is_empty()).count()
    }

    /// Total rerouted hot groups.
    pub fn n_hot_keys(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }
}

/// Greedy deterministic routing from the sites' heavy-hitter reports.
///
/// Sites more than [`DONOR_THRESHOLD`]× the mean row count donate their
/// hottest groups (descending estimated count, key-order tie-break) to
/// the least-loaded other site until they project at or below the mean.
/// A group whose count alone exceeds the mean splits across the
/// `ceil(count / mean)` lightest helpers. Counts are sketch
/// *over*estimates, which only ever makes the balancing more eager —
/// results stay bit-identical regardless (see the module docs).
pub fn plan_routing(reports: &[HotReport]) -> SkewPlan {
    let n = reports.len();
    let mut assignments = vec![Vec::new(); n];
    let total: u64 = reports.iter().map(|r| r.rows).sum();
    if n < 2 || total == 0 {
        return SkewPlan { assignments };
    }
    let mean = total as f64 / n as f64;
    let mut load: Vec<f64> = reports.iter().map(|r| r.rows as f64).collect();
    for donor in 0..n {
        if load[donor] <= mean * DONOR_THRESHOLD {
            continue;
        }
        let mut hitters = reports[donor].hitters.clone();
        hitters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (key, count) in hitters {
            if load[donor] <= mean {
                break;
            }
            let count = (count as f64).min(load[donor]);
            if count > mean && n > 2 {
                // Too hot for any single helper: split across the k
                // lightest other sites; detail segments route seg % k.
                let k = ((count / mean).ceil() as usize).clamp(2, n - 1);
                let mut cands: Vec<usize> = (0..n).filter(|&s| s != donor).collect();
                cands.sort_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)));
                let mut helpers: Vec<usize> = cands.into_iter().take(k).collect();
                helpers.sort_unstable();
                let share = count / helpers.len() as f64;
                for &h in &helpers {
                    load[h] += share;
                }
                load[donor] -= count;
                assignments[donor].push(Assignment { key, helpers });
            } else {
                // Move the whole group to the least-loaded other site —
                // but only if that improves the donor/helper balance.
                let helper = (0..n)
                    .filter(|&s| s != donor)
                    .min_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)))
                    .expect("n >= 2");
                if load[helper] + count >= load[donor] {
                    continue;
                }
                load[helper] += count;
                load[donor] -= count;
                assignments[donor].push(Assignment {
                    key,
                    helpers: vec![helper],
                });
            }
        }
    }
    SkewPlan { assignments }
}

/// What a donor is asked to extract alongside a stage task: the detail
/// columns forming the group key and the hot keys whose rows should be
/// loaned to helpers. Travels in the optional tail of a `RUN_STAGE`
/// frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractSpec {
    /// Detail columns carrying the key (in `plan.key` order).
    pub detail_cols: Vec<String>,
    /// The hot group keys to extract.
    pub keys: Vec<Vec<Value>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionInfo;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{Domain, DomainMap};

    fn correlated_expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .gmdj(
                Gmdj::new("t").block(
                    ThetaBuilder::group_by(&["g"])
                        .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                        .build(),
                    vec![AggSpec::count("above")],
                ),
            )
            .build()
    }

    #[test]
    fn unoptimized_plan_is_eligible_on_every_unit_stage() {
        let plan =
            Planner::new(DistributionInfo::new(4)).optimize(&correlated_expr(), OptFlags::none());
        let spec = skew_eligible(&plan).expect("eligible");
        assert_eq!(spec.table, "t");
        assert_eq!(spec.detail_cols, vec!["g".to_string()]);
        assert_eq!(spec.stages, vec![1, 2]);
    }

    #[test]
    fn chained_plan_is_not_eligible() {
        // With a partition attribute the whole chain folds into one local
        // round — nothing left to rebalance (and no base round to report
        // on).
        let mut d = DistributionInfo::new(4);
        d.set_table(
            "t",
            (0..4)
                .map(|i| DomainMap::new().with("g", Domain::IntRange(10 * i, 10 * i + 9)))
                .collect(),
        );
        let plan = Planner::new(d).optimize(&correlated_expr(), OptFlags::all());
        assert!(skew_eligible(&plan).is_none());
    }

    #[test]
    fn non_key_theta_is_not_eligible() {
        // θ has no equality on the key column: a detail row may contribute
        // to any group, so hot-key extraction cannot be exact.
        let expr = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::new()
                    .and(Expr::dcol("v").ge(Expr::bcol("g")))
                    .build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let plan = Planner::new(DistributionInfo::new(2)).optimize(&expr, OptFlags::none());
        assert!(skew_eligible(&plan).is_none());
    }

    #[test]
    fn routing_moves_hot_keys_off_the_loaded_site() {
        // Site 0 holds 10× the rows, dominated by two hot keys.
        let reports = vec![
            HotReport {
                rows: 1000,
                hitters: vec![
                    (vec![Value::Int(7)], 600),
                    (vec![Value::Int(3)], 250),
                    (vec![Value::Int(1)], 50),
                ],
            },
            HotReport {
                rows: 100,
                hitters: vec![(vec![Value::Int(9)], 40)],
            },
            HotReport {
                rows: 100,
                hitters: vec![],
            },
        ];
        let plan = plan_routing(&reports);
        assert_eq!(plan.n_donors(), 1);
        assert!(!plan.assignments[0].is_empty());
        assert!(plan.assignments[1].is_empty() && plan.assignments[2].is_empty());
        // The hottest key exceeds the mean (400) and splits.
        let hot = &plan.assignments[0][0];
        assert_eq!(hot.key, vec![Value::Int(7)]);
        assert!(hot.helpers.len() >= 2, "{:?}", hot.helpers);
        assert!(!hot.helpers.contains(&0), "donor never helps itself");
    }

    #[test]
    fn routing_is_deterministic_and_trivial_when_balanced() {
        let reports: Vec<HotReport> = (0..4)
            .map(|_| HotReport {
                rows: 100,
                hitters: vec![(vec![Value::Int(1)], 30)],
            })
            .collect();
        let a = plan_routing(&reports);
        assert!(a.is_trivial());
        assert_eq!(a, plan_routing(&reports));
        assert!(plan_routing(&[]).is_trivial());
        assert!(plan_routing(&reports[..1]).is_trivial());
    }

    #[test]
    fn routing_stops_when_moves_stop_helping() {
        // One hot key covers nearly everything; after splitting it, the
        // tail keys must not ping-pong load above the donor's.
        let reports = vec![
            HotReport {
                rows: 900,
                hitters: vec![(vec![Value::Int(0)], 880), (vec![Value::Int(1)], 10)],
            },
            HotReport {
                rows: 10,
                hitters: vec![],
            },
            HotReport {
                rows: 10,
                hitters: vec![],
            },
        ];
        let plan = plan_routing(&reports);
        let moved: usize = plan.n_hot_keys();
        assert!(moved >= 1);
        for a in &plan.assignments[0] {
            for h in &a.helpers {
                assert_ne!(*h, 0);
                assert!(*h < 3);
            }
        }
    }
}
