//! Multi-tier coordination — the paper's future-work Sect. 6
//! ("exploration of alternative architectures, e.g., a multi-tiered
//! coordinator architecture or spanning-tree networks").
//!
//! A two-level tree: sites report to *regional coordinators*, which merge
//! their region's sub-results (Theorem 1's merge is associative, so any
//! intermediate grouping of the partition is valid — see
//! [`crate::coordinator::PartialMerge`]) and forward one consolidated
//! relation to the *root*. The root's links then carry `O(#regions · |B|)`
//! per round instead of `O(#sites · |B|)` — attacking exactly the
//! quadratic term the paper's Fig. 2 isolates.
//!
//! The tree executes synchronously (it is an architecture simulation for
//! traffic analysis; the threaded star runtime in [`crate::cluster`] is
//! the primary engine). Both levels' traffic is recorded with the same
//! byte accounting as the star topology.

use crate::cluster::Cluster;
use crate::coordinator::{empty_aggregates, BaseSync, ChainSync, MergeSync, PartialMerge};
use crate::plan::{DistributedPlan, SiteFilter, StageKind, Unit};
use crate::site::execute_stage;
use skalla_gmdj::BaseQuery;
use skalla_net::{Direction, NetStats, RoundStats};
use skalla_relation::{Error, Relation, Result, Schema};
use std::collections::HashMap;

/// A two-level coordinator tree: which sites report to which regional
/// coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTopology {
    /// Site indexes per region. Regions must partition `0..n_sites`.
    pub regions: Vec<Vec<usize>>,
}

impl TreeTopology {
    /// Split `n_sites` sites into `n_regions` contiguous regions.
    pub fn balanced(n_sites: usize, n_regions: usize) -> TreeTopology {
        assert!(n_regions > 0 && n_regions <= n_sites);
        let per = n_sites.div_ceil(n_regions);
        let regions = (0..n_regions)
            .map(|r| ((r * per)..((r + 1) * per).min(n_sites)).collect())
            .filter(|v: &Vec<usize>| !v.is_empty())
            .collect();
        TreeTopology { regions }
    }

    /// Check the topology covers every site exactly once.
    pub fn validate(&self, n_sites: usize) -> Result<()> {
        let mut seen = vec![false; n_sites];
        for region in &self.regions {
            for &s in region {
                if s >= n_sites || seen[s] {
                    return Err(Error::Plan(format!(
                        "site {s} missing or assigned to two regions"
                    )));
                }
                seen[s] = true;
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(Error::Plan("topology does not cover all sites".into()))
        }
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }
}

/// Result of a tree execution: the answer plus per-level traffic.
#[derive(Debug, Clone)]
pub struct TreeQueryResult {
    /// The query answer.
    pub relation: Relation,
    /// Per-round traffic on the root ↔ regional-coordinator links.
    pub root_rounds: Vec<RoundStats>,
    /// Per-round traffic on the regional-coordinator ↔ site links.
    pub region_rounds: Vec<RoundStats>,
}

impl TreeQueryResult {
    /// Bytes through the root's links (the tree's scalability argument).
    pub fn root_bytes(&self) -> u64 {
        self.root_rounds.iter().map(|r| r.totals().total_bytes()).sum()
    }

    /// Bytes on the site-facing links.
    pub fn site_bytes(&self) -> u64 {
        self.region_rounds
            .iter()
            .map(|r| r.totals().total_bytes())
            .sum()
    }
}

/// Execute a plan over a two-level coordinator tree.
pub fn execute_tree(
    cluster: &Cluster,
    plan: &DistributedPlan,
    topo: &TreeTopology,
) -> Result<TreeQueryResult> {
    topo.validate(cluster.n_sites())?;
    plan.check_structure(cluster.n_sites())?;
    let schemas = plan.expr.validate(cluster.site_catalog(0))?;
    let detail_schemas: HashMap<String, Schema> = cluster
        .site_catalog(0)
        .iter()
        .map(|(k, v)| (k.clone(), v.schema().clone()))
        .collect();
    let root_stats = NetStats::new(topo.n_regions());
    let region_stats = NetStats::new(cluster.n_sites());

    let mut b_cur: Option<Relation> = match &plan.expr.base {
        BaseQuery::Literal(rel) => Some(rel.clone()),
        BaseQuery::DistinctProject { .. } => None,
    };

    for (sidx, stage) in plan.stages.iter().enumerate() {
        root_stats.begin_round(stage.label.clone());
        region_stats.begin_round(stage.label.clone());
        match &stage.kind {
            StageKind::Base => {
                let mut root_sync = BaseSync::new();
                for (r, region) in topo.regions.iter().enumerate() {
                    let mut region_sync = BaseSync::new();
                    for &s in region {
                        let frag = plan.base_fragment(cluster.site_catalog(s))?;
                        region_stats.record(s, Direction::Up, frag.encoded_size() as u64);
                        region_sync.absorb(frag)?;
                    }
                    // The region deduplicates before forwarding.
                    let regional = region_sync.finish(&plan.key)?;
                    root_stats.record(r, Direction::Up, regional.encoded_size() as u64);
                    root_sync.absorb(regional)?;
                }
                b_cur = Some(root_sync.finish(&plan.key)?);
            }
            StageKind::Unit(unit) => {
                b_cur = execute_tree_unit(
                    cluster,
                    plan,
                    unit,
                    sidx,
                    b_cur,
                    &schemas,
                    &detail_schemas,
                    topo,
                    &root_stats,
                    &region_stats,
                )?;
            }
        }
    }

    Ok(TreeQueryResult {
        relation: b_cur.ok_or_else(|| Error::Execution("plan produced no result".into()))?,
        root_rounds: root_stats.rounds().into_iter().skip(1).collect(),
        region_rounds: region_stats.rounds().into_iter().skip(1).collect(),
    })
}

#[allow(clippy::too_many_arguments)]
fn execute_tree_unit(
    cluster: &Cluster,
    plan: &DistributedPlan,
    unit: &Unit,
    sidx: usize,
    mut b_cur: Option<Relation>,
    schemas: &[Schema],
    detail_schemas: &HashMap<String, Schema>,
    topo: &TreeTopology,
    root_stats: &NetStats,
    region_stats: &NetStats,
) -> Result<Option<Relation>> {
    let ship_cols: Vec<&str> = unit.ship_columns.iter().map(String::as_str).collect();
    let ops = &plan.expr.ops[unit.ops.clone()];
    let out_schema = schemas[unit.ops.end].clone();
    let b_in_schema = &schemas[unit.ops.start];

    // Root-side synchronizers.
    let mut merge_sync = if unit.local_chain {
        None
    } else {
        Some(MergeSync::new(
            if unit.fold_base { None } else { b_cur.as_ref() },
            &plan.key,
            &ops[0],
        )?)
    };
    let mut chain_sync = if unit.local_chain {
        Some(ChainSync::new(plan.key.len()))
    } else {
        None
    };

    for (r, region) in topo.regions.iter().enumerate() {
        // Which of this region's sites participate?
        let participants: Vec<usize> = region
            .iter()
            .copied()
            .filter(|&s| !matches!(unit.site_filters[s], SiteFilter::Skip))
            .collect();
        if participants.is_empty() {
            continue;
        }

        // Root → region: one consolidated fragment (the tree's saving).
        let region_frag: Option<Relation> = if unit.fold_base {
            None
        } else {
            let b = b_cur
                .as_ref()
                .ok_or_else(|| Error::Execution("unit stage with no base structure".into()))?;
            let any_all = participants
                .iter()
                .any(|&s| matches!(unit.site_filters[s], SiteFilter::All));
            let frag = if any_all {
                b.project(&ship_cols)?
            } else {
                // Union of the sites' ¬ψ selections, deduplicated.
                let mut acc: Option<Relation> = None;
                for &s in &participants {
                    let SiteFilter::Predicate(p) = &unit.site_filters[s] else {
                        continue;
                    };
                    let bound = p.bind(b.schema(), None)?;
                    let sel = b.select(&bound)?;
                    acc = Some(match acc {
                        None => sel,
                        Some(a) => a.union_all(&sel)?,
                    });
                }
                acc.map(|a| a.distinct())
                    .unwrap_or_else(|| Relation::empty(b.schema().clone()))
                    .project(&ship_cols)?
            };
            root_stats.record(r, Direction::Down, frag.encoded_size() as u64);
            Some(frag)
        };

        // Region → sites, site compute, site → region.
        let mut region_partial: Option<PartialMerge> = None;
        let mut region_chain: Vec<Relation> = Vec::new();
        for &s in &participants {
            let site_frag = match (&region_frag, &unit.site_filters[s]) {
                (None, _) => None,
                (Some(f), SiteFilter::All) => Some(f.clone()),
                (Some(f), SiteFilter::Predicate(p)) => {
                    let bound = p.bind(f.schema(), None)?;
                    Some(f.select(&bound)?)
                }
                (_, SiteFilter::Skip) => unreachable!("filtered above"),
            };
            if let Some(f) = &site_frag {
                region_stats.record(s, Direction::Down, f.encoded_size() as u64);
            }
            let h = execute_stage(
                cluster.site_catalog(s),
                plan,
                sidx,
                site_frag,
                skalla_gmdj::eval::EvalOptions::default(),
            )?;
            region_stats.record(s, Direction::Up, h.encoded_size() as u64);
            if unit.local_chain {
                region_chain.push(h);
            } else {
                let pm = match &mut region_partial {
                    Some(pm) => pm,
                    None => {
                        region_partial = Some(PartialMerge::new(plan.key.len(), &ops[0]));
                        region_partial.as_mut().expect("just set")
                    }
                };
                pm.absorb(&h)?;
            }
        }

        // Region → root: one merged relation.
        if unit.local_chain {
            let mut it = region_chain.into_iter();
            if let Some(first) = it.next() {
                let mut acc = first;
                for h in it {
                    acc = acc.union_all(&h)?;
                }
                root_stats.record(r, Direction::Up, acc.encoded_size() as u64);
                chain_sync
                    .as_mut()
                    .expect("chained unit uses ChainSync")
                    .absorb(&acc)?;
            }
        } else if let Some(pm) = region_partial {
            // Schema: key columns + physical accumulator fields.
            let detail = detail_schemas
                .get(&unit.table)
                .ok_or_else(|| Error::Plan(format!("unknown table {:?}", unit.table)))?;
            let mut fields = Vec::new();
            for k in &plan.key {
                let idx = b_in_schema.index_of(k)?;
                fields.push(b_in_schema.field(idx).clone());
            }
            fields.extend(ops[0].layout().physical_fields(detail)?);
            let regional = pm.into_relation(std::sync::Arc::new(Schema::new(fields)?));
            root_stats.record(r, Direction::Up, regional.encoded_size() as u64);
            merge_sync
                .as_mut()
                .expect("non-chained unit uses MergeSync")
                .absorb(&regional)?;
        }
    }

    // Root finalization.
    let detail = detail_schemas
        .get(&unit.table)
        .ok_or_else(|| Error::Plan(format!("unknown table {:?}", unit.table)))?;
    let next = if let Some(sync) = merge_sync {
        sync.finish(b_in_schema, &ops[0], detail)?
    } else {
        let sync = chain_sync.expect("one of the synchronizers is set");
        if unit.fold_base {
            sync.finish_folded(out_schema)?
        } else {
            let empty = empty_aggregates(ops)?;
            let b = b_cur
                .take()
                .ok_or_else(|| Error::Execution("chained unit with no base".into()))?;
            sync.finish_against(&b, &plan.key, &empty, out_schema)?
        }
    };
    Ok(Some(next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Domain, DomainMap};

    fn cluster() -> Cluster {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let frags: Vec<(Relation, DomainMap)> = (0..4)
            .map(|i| {
                let rel = Relation::new(
                    schema.clone(),
                    vec![
                        row![2 * i as i64, 10 * i as i64],
                        row![2 * i as i64 + 1, 7i64],
                        row![2 * i as i64, 3i64],
                    ],
                )
                .unwrap();
                let dom = DomainMap::new()
                    .with("g", Domain::IntRange(2 * i as i64, 2 * i as i64 + 1));
                (rel, dom)
            })
            .collect();
        Cluster::from_partitions("t", frags)
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c"), AggSpec::avg("v", "a")],
            ))
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("v").ge(Expr::bcol("a")))
                    .build(),
                vec![AggSpec::count("above")],
            ))
            .build()
    }

    #[test]
    fn balanced_topology_partitions_sites() {
        let t = TreeTopology::balanced(8, 3);
        assert_eq!(t.n_regions(), 3);
        t.validate(8).unwrap();
        assert!(t.validate(7).is_err());
        let bad = TreeTopology {
            regions: vec![vec![0, 1], vec![1]],
        };
        assert!(bad.validate(2).is_err());
        let missing = TreeTopology {
            regions: vec![vec![0]],
        };
        assert!(missing.validate(2).is_err());
    }

    #[test]
    fn tree_matches_star_for_all_flag_sets() {
        let c = cluster();
        let topo = TreeTopology::balanced(4, 2);
        for bits in 0..16u32 {
            let flags = OptFlags {
                coalesce: bits & 1 != 0,
                group_reduction_site: bits & 2 != 0,
                group_reduction_coord: bits & 4 != 0,
                sync_reduction: bits & 8 != 0,
            };
            let plan = Planner::new(c.distribution()).optimize(&expr(), flags);
            let star = c.execute(&plan).unwrap();
            let tree = execute_tree(&c, &plan, &topo).unwrap();
            assert!(
                tree.relation.same_bag(&star.relation),
                "{flags:?}\n{}",
                plan.explain()
            );
        }
    }

    #[test]
    fn tree_reduces_root_traffic() {
        let c = cluster();
        let plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
        let star = c.execute(&plan).unwrap();
        let tree = execute_tree(&c, &plan, &TreeTopology::balanced(4, 2)).unwrap();
        assert!(
            tree.root_bytes() < star.stats.total_bytes(),
            "tree root {} vs star coordinator {}",
            tree.root_bytes(),
            star.stats.total_bytes()
        );
    }

    #[test]
    fn degenerate_topologies() {
        let c = cluster();
        let plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
        let star_result = c.execute(&plan).unwrap();
        // One region containing all sites ≈ the star.
        let all_in_one = execute_tree(&c, &plan, &TreeTopology::balanced(4, 1)).unwrap();
        assert!(all_in_one.relation.same_bag(&star_result.relation));
        // One region per site: root sees per-site traffic.
        let one_each = execute_tree(&c, &plan, &TreeTopology::balanced(4, 4)).unwrap();
        assert!(one_each.relation.same_bag(&star_result.relation));
        assert!(all_in_one.root_bytes() <= one_each.root_bytes());
    }
}
