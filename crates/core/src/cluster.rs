//! The distributed data warehouse runtime.
//!
//! A [`Cluster`] owns the partitioned fact relations of the warehouse
//! sites, spawns one thread per site connected to the coordinator by the
//! `skalla-net` star transport, and drives Alg. GMDJDistribEval over a
//! [`DistributedPlan`]: per stage, ship the base structure down, let the
//! sites compute, synchronize the sub-results, finalize. It also provides
//! the ship-everything centralized baseline that Skalla's design avoids.

use crate::coordinator::{
    empty_aggregates, parallel_merge_tree, BaseSync, ChainSync, MergeSync, PartialMerge,
};
use crate::distribution::DistributionInfo;
use crate::plan::{DistributedPlan, SiteFilter, StageKind};
use crate::protocol;
use crate::skew::{plan_routing, skew_eligible, Assignment, ExtractSpec, HotReport, SkewPlan};
use crate::stats::{ExecStats, QueryResult, StageTimes};
use parking_lot::Mutex;
use skalla_gmdj::eval::EvalOptions;
use skalla_gmdj::{BaseQuery, GmdjExpr};
use skalla_net::{star, CoordinatorTransport, Direction, NetStats};
use skalla_obs::{Obs, Track};
use skalla_relation::{DomainMap, Error, Relation, Result, Row, Schema, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A distributed data warehouse: `n` sites, each holding a horizontal
/// fragment of every fact relation, plus the coordinator logic.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Per-site catalogs, `Arc`-shared so site threads and the
    /// [`crate::Warehouse::catalog`] surface borrow the same metadata
    /// instead of cloning maps (copy-on-write under mutation).
    sites: Vec<Arc<HashMap<String, Arc<Relation>>>>,
    /// Partition epoch: bumped on every catalog mutation
    /// ([`Cluster::add_table`]), shared across clones so any handle
    /// observes every swap. The semantic cache keys on it.
    epoch: Arc<AtomicU64>,
    dist: DistributionInfo,
    eval: EvalOptions,
    timeout: Duration,
    chunk_rows: Option<usize>,
    obs: Obs,
}

impl Cluster {
    /// An empty cluster of `n_sites` sites.
    pub fn new(n_sites: usize) -> Cluster {
        assert!(n_sites > 0, "a cluster needs at least one site");
        Cluster {
            sites: (0..n_sites).map(|_| Arc::new(HashMap::new())).collect(),
            epoch: Arc::new(AtomicU64::new(0)),
            dist: DistributionInfo::new(n_sites),
            eval: EvalOptions::default(),
            timeout: Duration::from_secs(120),
            chunk_rows: None,
            obs: Obs::disabled(),
        }
    }

    /// Adopt an engine configuration: evaluation options, round timeout,
    /// row-blocking chunk size, and observability handle. The
    /// scheduler settings don't apply to this serial runtime (it
    /// executes one query at a time) and are ignored.
    pub fn configure(&mut self, cfg: &crate::warehouse::EngineConfig) -> &mut Cluster {
        self.eval = cfg.eval;
        self.timeout = cfg.timeout;
        self.chunk_rows = cfg.chunk_rows.filter(|r| *r > 0);
        self.obs = cfg.obs.clone();
        self
    }

    /// Register a partitioned fact relation: one fragment (with its φ
    /// description) per site, in site order. Re-registering a table
    /// replaces its partitions (a partition swap) and, like every
    /// catalog mutation, bumps the partition epoch.
    ///
    /// # Panics
    /// Panics if the fragment count differs from the cluster size or the
    /// fragments disagree on schema.
    pub fn add_table<P: Into<(Relation, DomainMap)>>(
        &mut self,
        table: impl Into<String>,
        parts: Vec<P>,
    ) -> &mut Cluster {
        let table = table.into();
        assert_eq!(
            parts.len(),
            self.sites.len(),
            "one fragment per site required"
        );
        let mut domains = Vec::with_capacity(parts.len());
        let mut schema: Option<Schema> = None;
        for (site, p) in parts.into_iter().enumerate() {
            let (rel, dom) = p.into();
            match &schema {
                None => schema = Some(rel.schema().clone()),
                Some(s) => assert_eq!(s, rel.schema(), "fragment schemas must agree across sites"),
            }
            domains.push(dom);
            Arc::make_mut(&mut self.sites[site]).insert(table.clone(), Arc::new(rel));
        }
        self.dist.set_table(table, domains);
        self.epoch.fetch_add(1, AtomicOrdering::SeqCst);
        self
    }

    /// Build a cluster directly from one table's partitions (the common
    /// single-fact-table case).
    pub fn from_partitions<P: Into<(Relation, DomainMap)>>(
        table: impl Into<String>,
        parts: Vec<P>,
    ) -> Cluster {
        let mut c = Cluster::new(parts.len());
        c.add_table(table, parts);
        c
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// The coordinator's distribution knowledge (feed this to
    /// [`crate::plan::Planner::new`]).
    pub fn distribution(&self) -> DistributionInfo {
        self.dist.clone()
    }

    /// The partition epoch: the count of catalog mutations this cluster
    /// (or any clone sharing its lineage) has seen. Cache keys carry it
    /// so a partition swap makes every dependent entry unreachable.
    pub fn partition_epoch(&self) -> u64 {
        self.epoch.load(AtomicOrdering::SeqCst)
    }

    /// One site's catalog (for tests and for plan validation).
    pub fn site_catalog(&self, site: usize) -> &HashMap<String, Arc<Relation>> {
        &self.sites[site]
    }

    /// One site's catalog as a shared handle (what site threads and the
    /// [`crate::Warehouse::catalog`] surface hold — no map clone).
    pub fn site_catalog_shared(&self, site: usize) -> Arc<HashMap<String, Arc<Relation>>> {
        Arc::clone(&self.sites[site])
    }

    /// The union of all fragments of every table — the conceptual global
    /// fact relations (test oracle input).
    pub fn global_catalog(&self) -> HashMap<String, Relation> {
        let mut out: HashMap<String, Relation> = HashMap::new();
        for site in &self.sites {
            for (name, rel) in site.iter() {
                match out.get_mut(name) {
                    None => {
                        out.insert(name.clone(), rel.as_ref().clone());
                    }
                    Some(acc) => {
                        *acc = acc
                            .union_all(rel)
                            .expect("fragment schemas agree by construction");
                    }
                }
            }
        }
        out
    }

    /// Execute a distributed plan: spawn the site threads, run the
    /// coordinator, and return the result with full statistics.
    pub fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        let n = self.n_sites();
        let wall_start = Instant::now();
        plan.check_structure(n)?;
        // Validate once against site 0's schemas; B₀…B_m schemas drive
        // finalization typing.
        let schemas = plan.expr.validate(self.site_catalog(0))?;
        let detail_schemas: HashMap<String, Schema> = self.sites[0]
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect();

        let (coord, site_nets) = star(n);
        coord.stats().set_obs(self.obs.clone());
        let mut query_span = self
            .obs
            .span(Track::Coordinator, "query")
            .with("sites", n)
            .with("rounds", plan.n_rounds());
        let times: Arc<Mutex<Vec<(usize, usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));

        let mut handles = Vec::with_capacity(n);
        for site_net in site_nets {
            let catalog = self.sites[site_net.site_id()].clone();
            let times = Arc::clone(&times);
            let obs = self.obs.clone();
            handles.push(std::thread::spawn(move || {
                crate::site::site_loop(&catalog, &site_net, Some(&times), &obs)
            }));
        }

        // Ship the plan (with the evaluation options every site's kernel
        // should use, and the row-blocking chunk size) over the accounted
        // transport (round 0).
        coord.stats().begin_round("plan");
        let plan_bytes =
            crate::plan_codec::encode_plan_with_options(plan, &self.eval, self.chunk_rows);
        let plan_msg = skalla_net::Message::new(protocol::TAG_PLAN, plan_bytes);
        let dispatch = coord.broadcast(&plan_msg).map_err(net_err);

        let run = dispatch.and_then(|()| {
            run_coordinator(
                &coord,
                plan,
                &schemas,
                &detail_schemas,
                &self.eval,
                self.timeout,
                &self.obs,
                Track::Coordinator,
                None,
                None,
            )
        });

        // Always release the sites, even on error.
        let _ = coord.broadcast(&protocol::shutdown());
        for h in handles {
            h.join()
                .map_err(|_| Error::Execution("site thread panicked".into()))?;
        }

        let (relation, mut stage_times) = run?;
        // Leading entry for the plan-distribution round.
        stage_times.insert(
            0,
            StageTimes {
                label: "plan".to_string(),
                site_busy_s: vec![0.0; n],
                ..StageTimes::default()
            },
        );
        for (site, stage, secs) in times.lock().iter() {
            if let Some(st) = stage_times.get_mut(*stage + 1) {
                st.site_busy_s[*site] += secs;
            }
        }
        let net = finished_rounds(coord.stats());
        query_span.arg("result_rows", relation.len());
        query_span.finish();
        Ok(QueryResult {
            relation,
            stats: ExecStats {
                stages: stage_times,
                net,
                wall_s: wall_start.elapsed().as_secs_f64(),
            },
        })
    }

    /// The ship-everything baseline: gather every referenced fragment at
    /// the coordinator (accounting the detail bytes the Skalla design
    /// never ships) and evaluate centrally.
    pub fn execute_centralized(&self, expr: &GmdjExpr) -> Result<QueryResult> {
        let n = self.n_sites();
        let wall_start = Instant::now();
        let mut tables: Vec<String> = expr.ops.iter().map(|o| o.detail.clone()).collect();
        if let Some(t) = expr.base.table() {
            tables.push(t.to_string());
        }
        tables.sort();
        tables.dedup();

        let stats = NetStats::new(n);
        stats.begin_round("ship detail");
        let mut gather = StageTimes {
            label: "ship detail".to_string(),
            site_busy_s: vec![0.0; n],
            ..StageTimes::default()
        };
        let mut catalog: HashMap<String, Relation> = HashMap::new();
        let t0 = Instant::now();
        for table in &tables {
            for (site, data) in self.sites.iter().enumerate() {
                let frag = data
                    .get(table)
                    .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?;
                stats.record(site, Direction::Up, frag.encoded_size() as u64);
                gather.rows_up += frag.len() as u64;
                match catalog.get_mut(table) {
                    None => {
                        catalog.insert(table.clone(), frag.as_ref().clone());
                    }
                    Some(acc) => *acc = acc.union_all(frag)?,
                }
            }
        }
        gather.coord_s = t0.elapsed().as_secs_f64();

        let mut evaluate = StageTimes {
            label: "evaluate".to_string(),
            site_busy_s: vec![0.0; n],
            ..StageTimes::default()
        };
        let t1 = Instant::now();
        let relation = expr.eval_centralized(&catalog, self.eval)?;
        evaluate.coord_s = t1.elapsed().as_secs_f64();

        Ok(QueryResult {
            relation,
            stats: ExecStats {
                stages: vec![gather, evaluate],
                net: finished_rounds(&stats),
                wall_s: wall_start.elapsed().as_secs_f64(),
            },
        })
    }
}

/// Drive Alg. GMDJDistribEval over any coordinator transport: per stage,
/// ship the base structure down, collect sub-results, synchronize. Shared
/// by the in-process [`Cluster`], the TCP
/// [`crate::remote::RemoteCluster`], and the concurrent
/// [`crate::warehouse::Skalla`] engine, which is what makes every path
/// byte-identical by construction — the protocol logic cannot diverge
/// between them.
///
/// `track` is the obs timeline the coordinator-side spans land on:
/// serial paths use [`Track::Coordinator`]; the concurrent engine gives
/// each query its own [`Track::Query`] so span nesting (which is
/// per-track) stays correct under interleaving. Spans carry a
/// `query_id` attribute when the track names one.
///
/// `resume` seeds execution from a cached prefix snapshot: `(j, b)`
/// adopts `b` as the synchronized base structure after stage `j` and
/// skips stages `0..=j` entirely — no site is contacted for them, but
/// each still contributes an empty round (and a zero
/// [`StageTimes`] entry) so round indices, traffic series, and the
/// busy-time merge stay aligned with the plan. Sites evaluate each
/// stage statelessly from the shipped fragment, so the resumed suffix
/// is bit-identical to a cold run. Skipping the base stage also skips
/// heavy-hitter collection, leaving the skew routing trivial — which
/// is result-safe because balanced and unbalanced runs are
/// bit-identical by construction.
///
/// `snapshots`, when present, receives `(j, b)` for every non-final
/// stage the coordinator actually synchronized — the prefix snapshots
/// the semantic cache stores for later resumes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_coordinator(
    coord: &dyn CoordinatorTransport,
    plan: &DistributedPlan,
    schemas: &[Schema],
    detail_schemas: &HashMap<String, Schema>,
    eval: &EvalOptions,
    timeout: Duration,
    obs: &Obs,
    track: Track,
    resume: Option<(usize, Relation)>,
    mut snapshots: Option<&mut Vec<(usize, Relation)>>,
) -> Result<(Relation, Vec<StageTimes>)> {
    let query_id = match track {
        Track::Query(q) => q,
        _ => 0,
    };
    let n = coord.n_sites();
    let (resume_after, mut b_cur) = match resume {
        Some((j, rel)) => (Some(j), Some(rel)),
        None => (
            None,
            match &plan.expr.base {
                BaseQuery::Literal(rel) => Some(rel.clone()),
                BaseQuery::DistinctProject { .. } => None,
            },
        ),
    };
    let mut stage_times = Vec::with_capacity(plan.stages.len());
    // Skew balancing: when the knob is on and the plan is eligible, the
    // sites append heavy-hitter reports to the base round, from which the
    // routing is decided once and applied to every eligible stage.
    let skew_spec = if eval.skew_balance {
        skew_eligible(plan)
    } else {
        None
    };
    let mut skew_plan = SkewPlan::default();

    for (sidx, stage) in plan.stages.iter().enumerate() {
        if resume_after.is_some_and(|j| sidx <= j) {
            // Answered by the resume snapshot: keep the round series and
            // stage/stat alignment with an empty round, ship nothing.
            coord.stats().begin_round(stage.label.clone());
            stage_times.push(StageTimes {
                label: stage.label.clone(),
                site_busy_s: vec![0.0; n],
                ..StageTimes::default()
            });
            continue;
        }
        coord.stats().begin_round(stage.label.clone());
        let mut stage_span = obs.span(track, stage.label.as_str());
        if query_id != 0 {
            stage_span.arg("query_id", query_id as u64);
        }
        let mut st = StageTimes {
            label: stage.label.clone(),
            site_busy_s: vec![0.0; n],
            ..StageTimes::default()
        };

        match &stage.kind {
            StageKind::Base => {
                coord
                    .broadcast(&protocol::run_stage(sidx as u32, None))
                    .map_err(net_err)?;
                let mut sync_span = obs.span(track, "BaseSync");
                let mut sync = BaseSync::new();
                if skew_spec.is_some() {
                    let mut reports: Vec<HotReport> = vec![HotReport::default(); n];
                    st.coord_s += collect_with_reports(
                        coord,
                        timeout,
                        n,
                        sidx as u32,
                        &mut reports,
                        |_, rel| {
                            st.rows_up += rel.len() as u64;
                            sync.absorb(rel)
                        },
                    )?;
                    let t = Instant::now();
                    skew_plan = plan_routing(&reports);
                    if obs.is_recording() && !skew_plan.is_trivial() {
                        obs.counter_add("skew.donors", skew_plan.n_donors() as f64);
                        obs.counter_add("skew.hot_keys", skew_plan.n_hot_keys() as f64);
                    }
                    st.coord_s += t.elapsed().as_secs_f64();
                } else {
                    st.coord_s += collect(coord, timeout, n, sidx as u32, |_, rel| {
                        st.rows_up += rel.len() as u64;
                        sync.absorb(rel)
                    })?;
                }
                let t = Instant::now();
                b_cur = Some(sync.finish(&plan.key)?);
                st.coord_s += t.elapsed().as_secs_f64();
                sync_span.arg("rows_up", st.rows_up);
                sync_span.arg("groups", b_cur.as_ref().map(|b| b.len()).unwrap_or(0));
                sync_span.finish();
            }
            StageKind::Unit(unit) => {
                // 1. Ship base fragments to participating sites. On a
                // skew-balanced stage, a donor's hot-group base rows are
                // held back for helpers and the donor is asked to loan
                // the matching detail segments out.
                let t = Instant::now();
                let mut ship_span = obs.span(track, "ship base");
                let mut participants = 0usize;
                let balancing = skew_spec
                    .as_ref()
                    .filter(|s| s.stages.contains(&sidx) && !skew_plan.is_trivial());
                let mut donors: HashMap<usize, DonorState> = HashMap::new();
                let shared_fragment: Option<Relation> = if unit.fold_base {
                    None
                } else {
                    let b = b_cur.as_ref().ok_or_else(|| {
                        Error::Execution("unit stage with no base structure".into())
                    })?;
                    Some(project_ship(b, &unit.ship_columns)?)
                };
                for site in 0..n {
                    let mut fragment = match &unit.site_filters[site] {
                        SiteFilter::Skip => {
                            // Thm 4, S_MD ⊂ S_B case: the whole fragment
                            // is eliminated for this site.
                            if obs.is_recording() {
                                let rows = b_cur.as_ref().map(|b| b.len()).unwrap_or(0);
                                obs.event(
                                    track,
                                    "group reduction skip",
                                    vec![("site", site.into()), ("rows_eliminated", rows.into())],
                                );
                            }
                            continue;
                        }
                        SiteFilter::All => shared_fragment.clone(),
                        SiteFilter::Predicate(p) => {
                            let b = b_cur.as_ref().expect("checked above");
                            let bound = p.bind(b.schema(), None)?;
                            let kept = b.select(&bound)?;
                            // Thm 4: rows eliminated by the ¬ψ filter.
                            if obs.is_recording() {
                                obs.event(
                                    track,
                                    "group reduction filter",
                                    vec![
                                        ("site", site.into()),
                                        ("rows_before", b.len().into()),
                                        ("rows_after", kept.len().into()),
                                        ("rows_eliminated", (b.len() - kept.len()).into()),
                                    ],
                                );
                            }
                            Some(project_ship(&kept, &unit.ship_columns)?)
                        }
                    };
                    participants += 1;
                    let mut extract = None;
                    if let Some(spec) = balancing {
                        if !skew_plan.assignments[site].is_empty() {
                            if let Some(f) = fragment.take() {
                                match split_donor_fragment(
                                    &f,
                                    &plan.key,
                                    &skew_plan.assignments[site],
                                    &spec.detail_cols,
                                )? {
                                    Some((cold, ex, state)) => {
                                        fragment = Some(cold);
                                        extract = Some(ex);
                                        donors.insert(site, state);
                                    }
                                    None => fragment = Some(f),
                                }
                            }
                        }
                    }
                    if let Some(f) = &fragment {
                        st.rows_down += f.len() as u64;
                    }
                    coord
                        .send(
                            site,
                            protocol::run_stage_with_extract(
                                sidx as u32,
                                fragment.as_ref(),
                                extract.as_ref(),
                            ),
                        )
                        .map_err(net_err)?;
                }
                st.coord_s += t.elapsed().as_secs_f64();
                ship_span.arg("rows_down", st.rows_down);
                ship_span.arg("participants", participants);
                ship_span.arg("fold_base", unit.fold_base);
                ship_span.finish();

                // 2. Synchronize sub-results.
                let ops = &plan.expr.ops[unit.ops.clone()];
                let b_in_schema = &schemas[unit.ops.start];
                let out_schema = schemas[unit.ops.end].clone();
                if unit.local_chain {
                    let mut sync_span = obs.span(track, "ChainSync");
                    let mut sync = ChainSync::new(plan.key.len());
                    st.coord_s += collect(coord, timeout, participants, sidx as u32, |_, rel| {
                        st.rows_up += rel.len() as u64;
                        sync.absorb(&rel)
                    })?;
                    let t = Instant::now();
                    b_cur = Some(if unit.fold_base {
                        sync.finish_folded(out_schema)?
                    } else {
                        let empty = empty_aggregates(ops)?;
                        let b = b_cur.take().expect("checked above");
                        sync.finish_against(&b, &plan.key, &empty, out_schema)?
                    });
                    st.coord_s += t.elapsed().as_secs_f64();
                    sync_span.arg("rows_up", st.rows_up);
                    sync_span.finish();
                } else {
                    let mut sync_span = obs.span(track, "MergeSync");
                    let op = &ops[0];
                    let mut sync = MergeSync::new(
                        if unit.fold_base { None } else { b_cur.as_ref() },
                        &plan.key,
                        op,
                    )?;
                    // Gather each site's chunks, coalesce them into one
                    // relation per site (chunks of one site hold disjoint
                    // keys, so this is a bitwise pass-through; a donor's
                    // coalesce also folds in the loan reconstruction),
                    // then merge across sites as a parallel binary tree
                    // whose shape depends only on the participant set —
                    // the same either way, which keeps balanced and
                    // unbalanced runs bit-identical.
                    let mut chunks_per_site: Vec<Vec<Relation>> = vec![Vec::new(); n];
                    if donors.is_empty() {
                        st.coord_s +=
                            collect(coord, timeout, participants, sidx as u32, |site, rel| {
                                st.rows_up += rel.len() as u64;
                                chunks_per_site[site].push(rel);
                                Ok(())
                            })?;
                    } else {
                        let spec = balancing.expect("donors imply an active skew spec");
                        st.coord_s += collect_balanced(
                            coord,
                            timeout,
                            participants,
                            sidx as u32,
                            &spec.detail_cols,
                            &mut donors,
                            &mut chunks_per_site,
                            &mut st,
                            obs,
                        )?;
                    }
                    let t = Instant::now();
                    let mut n_chunks = 0usize;
                    let mut per_site: Vec<Relation> = Vec::with_capacity(n);
                    for (site, site_chunks) in chunks_per_site.iter_mut().enumerate() {
                        let chunks = std::mem::take(site_chunks);
                        n_chunks += chunks.len();
                        let mut loan: Vec<(u32, usize, Relation)> = donors
                            .get_mut(&site)
                            .map(|d| std::mem::take(&mut d.results))
                            .unwrap_or_default();
                        if chunks.is_empty() && loan.is_empty() {
                            continue;
                        }
                        if chunks.len() == 1 && loan.is_empty() {
                            per_site.push(chunks.into_iter().next().expect("len checked"));
                            continue;
                        }
                        let schema = chunks
                            .first()
                            .map(|c| c.schema_ref())
                            .or_else(|| loan.first().map(|(_, _, r)| r.schema_ref()))
                            .expect("non-empty checked");
                        let mut pm = PartialMerge::new(plan.key.len(), op);
                        for c in &chunks {
                            pm.absorb(c)?;
                        }
                        // Loan sub-aggregates merge in (segment, helper)
                        // order — the donor's morsel order — so each hot
                        // key's state folds exactly as the donor would
                        // have folded it locally.
                        loan.sort_by_key(|&(seg, helper, _)| (seg, helper));
                        for (_, _, rel) in &loan {
                            pm.absorb(rel)?;
                        }
                        per_site.push(pm.into_relation(schema));
                    }
                    let merged = parallel_merge_tree(
                        per_site,
                        plan.key.len(),
                        op,
                        eval.effective_parallelism(),
                    )?;
                    if let Some(m) = &merged {
                        sync.absorb(m)?;
                    }
                    let detail = detail_schemas
                        .get(&unit.table)
                        .ok_or_else(|| Error::Plan(format!("unknown table {:?}", unit.table)))?;
                    b_cur = Some(sync.finish(b_in_schema, op, detail)?);
                    st.coord_s += t.elapsed().as_secs_f64();
                    sync_span.arg("rows_up", st.rows_up);
                    sync_span.arg("chunks", n_chunks);
                    sync_span.finish();
                }
            }
        }
        stage_span.arg("rows_down", st.rows_down);
        stage_span.arg("rows_up", st.rows_up);
        stage_span.finish();
        stage_times.push(st);
        if sidx + 1 < plan.stages.len() {
            if let (Some(snaps), Some(b)) = (snapshots.as_deref_mut(), b_cur.as_ref()) {
                snaps.push((sidx, b.clone()));
            }
        }
    }

    let relation = b_cur.ok_or_else(|| Error::Execution("plan produced no result".into()))?;
    Ok((relation, stage_times))
}

/// Receive stage results from `expected` sites (each possibly split
/// into row-blocked chunks), feeding every chunk into `absorb` (with
/// the reporting site's id) as it arrives; returns coordinator busy
/// seconds (decode + absorb, excluding waits).
pub(crate) fn collect(
    coord: &dyn CoordinatorTransport,
    timeout: Duration,
    expected: usize,
    stage: u32,
    mut absorb: impl FnMut(usize, Relation) -> Result<()>,
) -> Result<f64> {
    let mut busy = 0.0;
    let mut finished = 0usize;
    while finished < expected {
        let (site, msg) = coord.recv(timeout).map_err(net_err)?;
        let t = Instant::now();
        match msg.tag {
            protocol::TAG_RESULT => {
                let (s, last, rel) = protocol::decode_result(&msg.payload)?;
                if s != stage {
                    return Err(Error::Execution(format!(
                        "result for stage {s} while synchronizing stage {stage}"
                    )));
                }
                if last {
                    finished += 1;
                }
                absorb(site, rel)?;
            }
            protocol::TAG_ERROR => {
                return Err(Error::Execution(format!(
                    "site failed: {}",
                    protocol::decode_error(&msg.payload)
                )));
            }
            t => {
                return Err(Error::Execution(format!(
                    "unexpected message tag {t} from site"
                )))
            }
        }
        busy += t.elapsed().as_secs_f64();
    }
    Ok(busy)
}

/// [`collect`] for a skew-monitored base round: additionally gathers one
/// heavy-hitter report per site, returning once every site has sent both
/// its final result chunk and its report.
fn collect_with_reports(
    coord: &dyn CoordinatorTransport,
    timeout: Duration,
    expected: usize,
    stage: u32,
    reports: &mut [HotReport],
    mut absorb: impl FnMut(usize, Relation) -> Result<()>,
) -> Result<f64> {
    let mut busy = 0.0;
    let mut finished = 0usize;
    let mut reported = 0usize;
    while finished < expected || reported < expected {
        let (site, msg) = coord.recv(timeout).map_err(net_err)?;
        let t = Instant::now();
        match msg.tag {
            protocol::TAG_RESULT => {
                let (s, last, rel) = protocol::decode_result(&msg.payload)?;
                if s != stage {
                    return Err(Error::Execution(format!(
                        "result for stage {s} while synchronizing stage {stage}"
                    )));
                }
                if last {
                    finished += 1;
                }
                absorb(site, rel)?;
            }
            protocol::TAG_HH_REPORT => {
                let (s, report) = protocol::decode_hh_report(&msg.payload)?;
                if s != stage {
                    return Err(Error::Execution(format!(
                        "heavy-hitter report for stage {s} during stage {stage}"
                    )));
                }
                reports[site] = report;
                reported += 1;
            }
            protocol::TAG_ERROR => {
                return Err(Error::Execution(format!(
                    "site failed: {}",
                    protocol::decode_error(&msg.payload)
                )));
            }
            t => {
                return Err(Error::Execution(format!(
                    "unexpected message tag {t} from site"
                )))
            }
        }
        busy += t.elapsed().as_secs_f64();
    }
    Ok(busy)
}

/// Coordinator-side context for one donor site on one rebalanced stage.
struct DonorState {
    /// Hot key → the helper sites taking it over.
    helpers: HashMap<Vec<Value>, Vec<usize>>,
    /// The base rows removed from the donor's fragment, in fragment
    /// order, with their keys.
    base_rows: Vec<(Vec<Value>, Row)>,
    /// The shipped fragment's schema (the base relation of loan tasks).
    schema: skalla_relation::SchemaRef,
    /// `(segment, helper, sub-aggregates)` triples received back.
    results: Vec<(u32, usize, Relation)>,
}

/// Split a donor's base fragment into the cold tail it evaluates itself
/// and the hot-group rows held back for helpers. Returns `None` when no
/// assigned hot key is actually present in the fragment (group reduction
/// may have filtered them out), in which case the stage runs unbalanced
/// for this site.
fn split_donor_fragment(
    f: &Relation,
    key: &[String],
    assignments: &[Assignment],
    detail_cols: &[String],
) -> Result<Option<(Relation, ExtractSpec, DonorState)>> {
    let mut key_idx = Vec::with_capacity(key.len());
    for k in key {
        key_idx.push(f.schema().index_of(k)?);
    }
    let assigned: HashMap<&Vec<Value>, &Vec<usize>> =
        assignments.iter().map(|a| (&a.key, &a.helpers)).collect();
    let mut cold: Vec<Row> = Vec::with_capacity(f.len());
    let mut base_rows: Vec<(Vec<Value>, Row)> = Vec::new();
    let mut helpers: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    for row in f.iter() {
        let k: Vec<Value> = key_idx.iter().map(|&i| row.get(i).clone()).collect();
        match assigned.get(&k) {
            Some(h) => {
                keys.push(k.clone());
                helpers.insert(k.clone(), (*h).clone());
                base_rows.push((k, row.clone()));
            }
            None => cold.push(row.clone()),
        }
    }
    if keys.is_empty() {
        return Ok(None);
    }
    let cold = Relation::from_shared(f.schema_ref(), cold);
    let spec = ExtractSpec {
        detail_cols: detail_cols.to_vec(),
        keys,
    };
    let state = DonorState {
        helpers,
        base_rows,
        schema: f.schema_ref(),
        results: Vec::new(),
    };
    Ok(Some((cold, spec, state)))
}

/// [`collect`] for a skew-balanced stage: alongside the regular result
/// chunks, receives each donor's loan (dispatching its segments to the
/// assigned helpers as soon as it arrives, so helpers overlap with the
/// still-running sites) and the helpers' per-segment sub-aggregates.
/// Returns once every participant finished, every donor loaned, and
/// every dispatched loan task answered.
#[allow(clippy::too_many_arguments)]
fn collect_balanced(
    coord: &dyn CoordinatorTransport,
    timeout: Duration,
    expected: usize,
    stage: u32,
    detail_cols: &[String],
    donors: &mut HashMap<usize, DonorState>,
    chunks_per_site: &mut [Vec<Relation>],
    st: &mut StageTimes,
    obs: &Obs,
) -> Result<f64> {
    let mut busy = 0.0;
    let mut finished = 0usize;
    let mut loans = 0usize;
    let mut tasks_sent = 0usize;
    let mut results_recv = 0usize;
    while finished < expected || loans < donors.len() || results_recv < tasks_sent {
        let (site, msg) = coord.recv(timeout).map_err(net_err)?;
        let t = Instant::now();
        match msg.tag {
            protocol::TAG_RESULT => {
                let (s, last, rel) = protocol::decode_result(&msg.payload)?;
                if s != stage {
                    return Err(Error::Execution(format!(
                        "result for stage {s} while synchronizing stage {stage}"
                    )));
                }
                if last {
                    finished += 1;
                }
                st.rows_up += rel.len() as u64;
                chunks_per_site[site].push(rel);
            }
            protocol::TAG_LOAN => {
                let (s, segments) = protocol::decode_loan(&msg.payload)?;
                if s != stage {
                    return Err(Error::Execution(format!(
                        "loan for stage {s} during stage {stage}"
                    )));
                }
                loans += 1;
                let state = donors
                    .get_mut(&site)
                    .ok_or_else(|| Error::Execution("loan from a non-donor site".into()))?;
                // Route each segment's rows to its keys' helpers and
                // dispatch one task per helper.
                let mut per_helper: BTreeMap<usize, Vec<(u32, Relation)>> = BTreeMap::new();
                for (seg, rel) in &segments {
                    st.rows_up += rel.len() as u64;
                    let mut idx = Vec::with_capacity(detail_cols.len());
                    for c in detail_cols {
                        idx.push(rel.schema().index_of(c)?);
                    }
                    let mut split: BTreeMap<usize, Vec<Row>> = BTreeMap::new();
                    for row in rel.iter() {
                        let k: Vec<Value> = idx.iter().map(|&i| row.get(i).clone()).collect();
                        let helpers = state.helpers.get(&k).ok_or_else(|| {
                            Error::Execution("loaned row with an unassigned key".into())
                        })?;
                        split
                            .entry(helpers[*seg as usize % helpers.len()])
                            .or_default()
                            .push(row.clone());
                    }
                    for (h, rows) in split {
                        per_helper
                            .entry(h)
                            .or_default()
                            .push((*seg, Relation::from_shared(rel.schema_ref(), rows)));
                    }
                }
                for (helper, segs) in per_helper {
                    let base_rows: Vec<Row> = state
                        .base_rows
                        .iter()
                        .filter(|(k, _)| state.helpers[k].contains(&helper))
                        .map(|(_, r)| r.clone())
                        .collect();
                    let base = Relation::from_shared(Arc::clone(&state.schema), base_rows);
                    st.rows_down += base.len() as u64;
                    for (_, r) in &segs {
                        st.rows_down += r.len() as u64;
                    }
                    if obs.is_recording() {
                        obs.counter_add(
                            "skew.loaned_rows",
                            segs.iter().map(|(_, r)| r.len() as f64).sum(),
                        );
                    }
                    coord
                        .send(helper, protocol::loan_task(stage, site as u32, &base, &segs))
                        .map_err(net_err)?;
                    tasks_sent += 1;
                }
            }
            protocol::TAG_LOAN_RESULT => {
                let (s, donor, segments) = protocol::decode_loan_result(&msg.payload)?;
                if s != stage {
                    return Err(Error::Execution(format!(
                        "loan result for stage {s} during stage {stage}"
                    )));
                }
                results_recv += 1;
                let state = donors
                    .get_mut(&(donor as usize))
                    .ok_or_else(|| Error::Execution("loan result for a non-donor site".into()))?;
                for (seg, rel) in segments {
                    st.rows_up += rel.len() as u64;
                    state.results.push((seg, site, rel));
                }
            }
            protocol::TAG_ERROR => {
                return Err(Error::Execution(format!(
                    "site failed: {}",
                    protocol::decode_error(&msg.payload)
                )));
            }
            t => {
                return Err(Error::Execution(format!(
                    "unexpected message tag {t} from site"
                )))
            }
        }
        busy += t.elapsed().as_secs_f64();
    }
    Ok(busy)
}

/// Project the base structure to the shipped columns.
fn project_ship(b: &Relation, ship_columns: &[String]) -> Result<Relation> {
    b.project(&ship_columns.iter().map(String::as_str).collect::<Vec<_>>())
}

pub(crate) fn net_err(e: skalla_net::NetError) -> Error {
    Error::Execution(format!("network: {e}"))
}

/// All traffic rounds, skipping the implicit empty round the accounting
/// opens before the first stage.
pub(crate) fn finished_rounds(stats: &NetStats) -> Vec<skalla_net::RoundStats> {
    let rounds = stats.rounds();
    debug_assert!(
        rounds
            .first()
            .map(|r| r.totals().total_bytes() == 0)
            .unwrap_or(true),
        "traffic before the first stage"
    );
    rounds.into_iter().skip(1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Domain};

    /// Two sites partitioned on g: site 0 has g ∈ {1, 2}, site 1 has g = 3.
    fn cluster() -> Cluster {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, 10i64], row![1i64, 30i64], row![2i64, 5i64]],
        )
        .unwrap();
        let p1 = Relation::new(schema, vec![row![3i64, 7i64], row![3i64, 9i64]]).unwrap();
        Cluster::from_partitions(
            "t",
            vec![
                (p0, DomainMap::new().with("g", Domain::IntRange(1, 2))),
                (p1, DomainMap::new().with("g", Domain::IntRange(3, 3))),
            ],
        )
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .gmdj(
                Gmdj::new("t").block(
                    ThetaBuilder::group_by(&["g"])
                        .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                        .build(),
                    vec![AggSpec::count("above")],
                ),
            )
            .build()
    }

    fn expected() -> Vec<Row> {
        vec![
            row![1i64, 2i64, 20.0, 1i64],
            row![2i64, 1i64, 5.0, 1i64],
            row![3i64, 2i64, 8.0, 1i64],
        ]
    }

    #[test]
    fn unoptimized_execution_matches_oracle() {
        let c = cluster();
        let plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
        assert_eq!(plan.n_rounds(), 3);
        let out = c.execute(&plan).unwrap();
        let sorted = out.relation.sorted_by(&["g"]).unwrap();
        assert_eq!(sorted.rows(), expected().as_slice());
        // Oracle agreement.
        let oracle = expr()
            .eval_centralized(&c.global_catalog(), EvalOptions::default())
            .unwrap();
        assert!(out.relation.same_bag(&oracle));
        // Stats shape.
        assert_eq!(out.stats.n_rounds(), 3);
        assert!(out.stats.total_bytes() > 0);
        let (down, up) = out.stats.total_rows();
        assert!(down > 0 && up > 0);
    }

    #[test]
    fn every_optimization_combination_is_equivalent() {
        let c = cluster();
        let oracle = expr()
            .eval_centralized(&c.global_catalog(), EvalOptions::default())
            .unwrap();
        for bits in 0..16u32 {
            let flags = OptFlags {
                coalesce: bits & 1 != 0,
                group_reduction_site: bits & 2 != 0,
                group_reduction_coord: bits & 4 != 0,
                sync_reduction: bits & 8 != 0,
            };
            let plan = Planner::new(c.distribution()).optimize(&expr(), flags);
            let out = c
                .execute(&plan)
                .unwrap_or_else(|e| panic!("flags {flags:?} failed: {e}\n{}", plan.explain()));
            assert!(
                out.relation.same_bag(&oracle),
                "flags {flags:?} wrong result\n{}",
                plan.explain()
            );
        }
    }

    #[test]
    fn full_sync_reduction_runs_one_round_and_less_traffic() {
        let c = cluster();
        let planner = Planner::new(c.distribution());
        let slow = c
            .execute(&planner.optimize(&expr(), OptFlags::none()))
            .unwrap();
        let fast_plan = planner.optimize(&expr(), OptFlags::all());
        assert_eq!(fast_plan.n_rounds(), 1, "{}", fast_plan.explain());
        let fast = c.execute(&fast_plan).unwrap();
        assert!(fast.relation.same_bag(&slow.relation));
        assert!(
            fast.stats.total_bytes() < slow.stats.total_bytes(),
            "optimized {} vs unoptimized {}",
            fast.stats.total_bytes(),
            slow.stats.total_bytes()
        );
    }

    #[test]
    fn group_reduction_reduces_shipped_rows() {
        let c = cluster();
        let planner = Planner::new(c.distribution());
        let none = c
            .execute(&planner.optimize(&expr(), OptFlags::none()))
            .unwrap();
        let gr = c
            .execute(&planner.optimize(&expr(), OptFlags::group_reduction_only()))
            .unwrap();
        assert!(gr.relation.same_bag(&none.relation));
        let (d0, u0) = none.stats.total_rows();
        let (d1, u1) = gr.stats.total_rows();
        assert!(d1 < d0, "coordinator-side reduction: {d1} < {d0}");
        assert!(u1 <= u0, "site-side reduction: {u1} <= {u0}");
    }

    #[test]
    fn centralized_baseline_matches_and_ships_detail() {
        let c = cluster();
        let base = c.execute_centralized(&expr()).unwrap();
        let plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
        let dist = c.execute(&plan).unwrap();
        assert!(base.relation.same_bag(&dist.relation));
        // The baseline ships all 5 detail rows.
        let (_, up) = base.stats.total_rows();
        assert_eq!(up, 5);
    }

    #[test]
    fn literal_base_execution() {
        let c = cluster();
        let groups = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![99i64]],
        )
        .unwrap();
        let e = GmdjExprBuilder::literal_base(groups)
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt")],
            ))
            .build();
        let plan = Planner::new(c.distribution()).optimize(&e, OptFlags::none());
        let out = c.execute(&plan).unwrap();
        let sorted = out.relation.sorted_by(&["g"]).unwrap();
        assert_eq!(sorted.rows()[0], row![1i64, 2i64]);
        assert_eq!(sorted.rows()[1], row![99i64, 0i64]);
    }

    #[test]
    fn site_error_propagates() {
        // A plan referencing a missing table fails validation up front.
        let c = cluster();
        let e = GmdjExprBuilder::distinct_base("missing", &["g"])
            .gmdj(Gmdj::new("missing").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt")],
            ))
            .build();
        let plan = Planner::new(c.distribution()).optimize(&e, OptFlags::none());
        assert!(c.execute(&plan).is_err());
    }

    #[test]
    fn execution_records_full_span_tree() {
        let mut c = cluster();
        let obs = Obs::recording();
        c.configure(&crate::warehouse::EngineConfig {
            obs: obs.clone(),
            ..crate::warehouse::EngineConfig::default()
        });
        let plan = Planner::new(c.distribution())
            .with_obs(obs.clone())
            .optimize(&expr(), OptFlags::none());
        c.execute(&plan).unwrap();

        let rec = obs.recorder().unwrap();
        let spans = rec.spans();
        // Every span closed.
        assert!(spans.iter().all(|s| s.dur_us.is_some()));
        // Query root on the coordinator track, stages nested beneath it.
        let query = spans
            .iter()
            .find(|s| s.name == "query")
            .expect("query span");
        assert_eq!(query.track, Track::Coordinator);
        for label in ["base", "gmdj 1", "gmdj 2"] {
            let st = spans
                .iter()
                .find(|s| s.name == label && s.track == Track::Coordinator)
                .unwrap_or_else(|| panic!("missing stage span {label}"));
            assert_eq!(st.parent, Some(query.id));
        }
        // Sync spans nest under their stages.
        assert!(spans.iter().any(|s| s.name == "BaseSync"));
        assert_eq!(spans.iter().filter(|s| s.name == "MergeSync").count(), 2);
        assert_eq!(spans.iter().filter(|s| s.name == "ship base").count(), 2);
        // Each site ran each of the three stages.
        for site in 0..2 {
            assert_eq!(
                spans
                    .iter()
                    .filter(|s| s.track == Track::Site(site))
                    .count(),
                3,
                "site {site} task spans"
            );
        }
        // The transport recorded message events and byte counters.
        let events = rec.events();
        assert!(events.iter().any(|e| e.name == "msg down"));
        assert!(events.iter().any(|e| e.name == "msg up"));
        assert!(rec.counters().contains_key("net.bytes_down"));
    }

    #[test]
    fn group_reduction_emits_elimination_events() {
        let mut c = cluster();
        let obs = Obs::recording();
        c.configure(&crate::warehouse::EngineConfig {
            obs: obs.clone(),
            ..crate::warehouse::EngineConfig::default()
        });
        // Restrict to g <= 2: site 1 (g = 3) is skipped under Thm 4.
        let e = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(
                Gmdj::new("t").block(
                    ThetaBuilder::group_by(&["g"])
                        .and(Expr::dcol("g").le(Expr::lit(2i64)))
                        .build(),
                    vec![AggSpec::count("cnt")],
                ),
            )
            .build();
        let plan = Planner::new(c.distribution()).optimize(
            &e,
            OptFlags {
                group_reduction_coord: true,
                ..OptFlags::none()
            },
        );
        c.execute(&plan).unwrap();
        let events = obs.recorder().unwrap().events();
        let skip = events
            .iter()
            .find(|e| e.name == "group reduction skip")
            .expect("skip event");
        assert!(skip
            .args
            .iter()
            .any(|(k, v)| *k == "rows_eliminated" && *v == skalla_obs::ArgValue::UInt(3)));
        assert!(events.iter().any(|e| e.name == "group reduction filter"));
    }

    #[test]
    fn global_catalog_unions_fragments() {
        let c = cluster();
        let g = c.global_catalog();
        assert_eq!(g["t"].len(), 5);
    }
}
