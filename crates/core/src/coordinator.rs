//! Coordinator-side synchronization.
//!
//! The coordinator maintains the base-result structure X, indexed on the
//! key attributes K, and consolidates each site's sub-results into it as
//! they arrive — O(|H|) per incoming relation (paper Sect. 3.2). Three
//! synchronizers cover the three stage shapes:
//!
//! * [`BaseSync`] — union + duplicate elimination of base fragments;
//! * [`MergeSync`] — super-aggregate merging of physical accumulators
//!   (Theorem 1), with insert-on-first-sight for folded units (Prop 2);
//! * [`ChainSync`] — disjoint assembly of locally-finalized results from
//!   synchronization-reduced units (Thm 5 / Cor 1), which *verifies* the
//!   partition assumption by rejecting duplicate keys.

use skalla_gmdj::agg::AccLayout;
use skalla_gmdj::operator::Gmdj;
use skalla_relation::{Error, Relation, Result, Row, Schema, Value};
use std::collections::HashMap;

/// Check that `key` column values are unique in `rel`; returns the key
/// column indexes.
pub fn verify_unique_key(rel: &Relation, key: &[String]) -> Result<Vec<usize>> {
    let idx = rel
        .schema()
        .indexes_of(&key.iter().map(String::as_str).collect::<Vec<_>>())?;
    let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rel.len());
    for row in rel {
        if seen.insert(row.key(&idx), ()).is_some() {
            return Err(Error::Execution(format!(
                "base-values relation has duplicate key {:?}",
                row.key(&idx)
            )));
        }
    }
    Ok(idx)
}

/// Synchronizer for the base round: collects each site's distinct groups.
#[derive(Debug)]
pub struct BaseSync {
    acc: Option<Relation>,
}

impl BaseSync {
    /// Start with nothing collected.
    pub fn new() -> BaseSync {
        BaseSync { acc: None }
    }

    /// Absorb one site's base fragment.
    pub fn absorb(&mut self, fragment: Relation) -> Result<()> {
        self.acc = Some(match self.acc.take() {
            None => fragment,
            Some(acc) => acc.union_all(&fragment)?,
        });
        Ok(())
    }

    /// Deduplicate into B₀, verify the key is unique, and sort by key.
    ///
    /// Fragments arrive in whatever order site threads reply, so without
    /// the sort the row order of B₀ — and of every later round, and of
    /// the final result — would vary run to run. Sorting by the (unique)
    /// key makes distributed results reproducible and lets ablation runs
    /// (kernels, transports, skew balancing) be compared bit for bit.
    pub fn finish(self, key: &[String]) -> Result<Relation> {
        let b = self
            .acc
            .ok_or_else(|| Error::Execution("no base fragments received".into()))?
            .distinct();
        verify_unique_key(&b, key)?;
        let cols: Vec<&str> = key.iter().map(String::as_str).collect();
        b.sorted_by(&cols)
    }
}

impl Default for BaseSync {
    fn default() -> Self {
        BaseSync::new()
    }
}

/// Synchronizer for a single-operator unit: merges physical sub-aggregates
/// into X per Theorem 1.
#[derive(Debug)]
pub struct MergeSync {
    /// Full current-B rows (or key rows when folded) with accumulator
    /// columns appended.
    rows: Vec<Row>,
    index: HashMap<Vec<Value>, usize>,
    key_idx: Vec<usize>,
    base_arity: usize,
    layout: AccLayout,
    fold: bool,
}

impl MergeSync {
    /// Build X from the current base structure (`None` for folded units,
    /// where X grows from the incoming sub-results).
    pub fn new(b_cur: Option<&Relation>, key: &[String], op: &Gmdj) -> Result<MergeSync> {
        let layout = op.layout();
        match b_cur {
            Some(b) => {
                let key_idx = verify_unique_key(b, key)?;
                let init = layout.init();
                let mut index = HashMap::with_capacity(b.len());
                let mut rows = Vec::with_capacity(b.len());
                for (i, row) in b.iter().enumerate() {
                    index.insert(row.key(&key_idx), i);
                    rows.push(row.extend(&init));
                }
                Ok(MergeSync {
                    rows,
                    index,
                    key_idx,
                    base_arity: b.schema().len(),
                    layout,
                    fold: false,
                })
            }
            None => Ok(MergeSync {
                rows: Vec::new(),
                index: HashMap::new(),
                key_idx: (0..key.len()).collect(),
                base_arity: key.len(),
                layout,
                fold: true,
            }),
        }
    }

    /// Absorb one site's sub-result. `h` has the key columns first, then
    /// the physical accumulator columns.
    pub fn absorb(&mut self, h: &Relation) -> Result<()> {
        let key_len = self.key_idx.len();
        let width = self.layout.width();
        if h.schema().len() != key_len + width {
            return Err(Error::Execution(format!(
                "sub-result arity {} != key {} + accumulators {}",
                h.schema().len(),
                key_len,
                width
            )));
        }
        for row in h {
            let key: Vec<Value> = row.values()[..key_len].to_vec();
            match self.index.get(&key) {
                Some(&pos) => {
                    let dst = &mut self.rows[pos];
                    let mut vals = dst.values().to_vec();
                    self.layout
                        .merge(&mut vals[self.base_arity..], &row.values()[key_len..])?;
                    *dst = Row::new(vals);
                }
                None if self.fold => {
                    // Prop 2: first sighting of this group — its base part
                    // is exactly its key.
                    self.index.insert(key, self.rows.len());
                    self.rows.push(row.clone());
                }
                None => {
                    return Err(Error::Execution(format!(
                        "site reported unknown group {key:?}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Finalize X into B_next with the logical output schema.
    pub fn finish(self, b_in_schema: &Schema, op: &Gmdj, detail: &Schema) -> Result<Relation> {
        let out_schema = op.output_schema(b_in_schema, detail)?;
        let mut rows = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let (base_part, acc_part) = row.values().split_at(self.base_arity);
            let logical = self.layout.finalize(acc_part)?;
            let mut vs = Vec::with_capacity(base_part.len() + logical.len());
            vs.extend_from_slice(base_part);
            vs.extend(logical);
            rows.push(Row::new(vs));
        }
        let mut rel = Relation::new(out_schema, rows)?;
        if self.fold {
            // Insertion order is site-arrival order; sort for determinism.
            let key_cols: Vec<&str> = (0..self.key_idx.len())
                .map(|i| rel.schema().field(i).name())
                .map(|s| s as &str)
                .collect::<Vec<_>>()
                .clone();
            let key_cols: Vec<String> = key_cols.iter().map(|s| s.to_string()).collect();
            rel = rel.sorted_by(&key_cols.iter().map(String::as_str).collect::<Vec<_>>())?;
        }
        Ok(rel)
    }
}

/// Synchronizer for a locally-chained unit: assembles disjoint finalized
/// results.
#[derive(Debug)]
pub struct ChainSync {
    /// key → logical aggregate values for the unit's operators.
    map: HashMap<Vec<Value>, Vec<Value>>,
    /// Arrival order of keys (used for folded output assembly).
    order: Vec<Vec<Value>>,
    key_len: usize,
}

impl ChainSync {
    /// A synchronizer expecting `key_len` leading key columns.
    pub fn new(key_len: usize) -> ChainSync {
        ChainSync {
            map: HashMap::new(),
            order: Vec::new(),
            key_len,
        }
    }

    /// Absorb one site's finalized result (key columns + logical
    /// aggregates). Duplicate keys mean the partition-attribute assumption
    /// was violated — an execution error, not silent wrong answers.
    pub fn absorb(&mut self, h: &Relation) -> Result<()> {
        for row in h {
            let (k, aggs) = row.values().split_at(self.key_len);
            let key = k.to_vec();
            if self
                .map
                .insert(key.clone(), aggs.to_vec())
                .is_some()
            {
                return Err(Error::Execution(format!(
                    "two sites reported group {key:?}: partition attribute assumption violated"
                )));
            }
            self.order.push(key);
        }
        Ok(())
    }

    /// Assemble B_next against the coordinator's current B (non-folded):
    /// every group of `b_cur` gets its site-computed aggregates, or
    /// `empty_aggs` when no site owned it.
    pub fn finish_against(
        mut self,
        b_cur: &Relation,
        key: &[String],
        empty_aggs: &[Value],
        out_schema: Schema,
    ) -> Result<Relation> {
        let key_idx = verify_unique_key(b_cur, key)?;
        let mut rows = Vec::with_capacity(b_cur.len());
        for row in b_cur {
            let k = row.key(&key_idx);
            let aggs = self.map.remove(&k).unwrap_or_else(|| empty_aggs.to_vec());
            rows.push(row.extend(&aggs));
        }
        if !self.map.is_empty() {
            return Err(Error::Execution(format!(
                "sites reported {} group(s) not in the base structure",
                self.map.len()
            )));
        }
        Relation::new(out_schema, rows)
    }

    /// Assemble B_next for a folded unit: the collected rows *are* the
    /// result (sorted by key for determinism).
    pub fn finish_folded(self, out_schema: Schema) -> Result<Relation> {
        let key_len = self.key_len;
        let mut rows: Vec<Row> = self
            .order
            .iter()
            .map(|k| {
                let aggs = self.map.get(k).expect("ordered keys are in the map");
                let mut vs = Vec::with_capacity(key_len + aggs.len());
                vs.extend_from_slice(k);
                vs.extend_from_slice(aggs);
                Row::new(vs)
            })
            .collect();
        rows.sort_by(|a, b| a.values()[..key_len].cmp(&b.values()[..key_len]));
        Relation::new(out_schema, rows)
    }
}

/// A *partial* merger of physical sub-aggregates that does **not**
/// finalize: regional coordinators in the multi-tier topology use it to
/// combine their sites' sub-results into one still-mergeable relation
/// before forwarding to the root (Theorem 1 applied recursively — merge is
/// associative, so any intermediate grouping of the partition is valid).
#[derive(Debug)]
pub struct PartialMerge {
    map: HashMap<Vec<Value>, Vec<Value>>,
    order: Vec<Vec<Value>>,
    key_len: usize,
    layout: AccLayout,
}

impl PartialMerge {
    /// A partial merger for sub-results of `op` keyed on `key_len` leading
    /// columns.
    pub fn new(key_len: usize, op: &Gmdj) -> PartialMerge {
        PartialMerge {
            map: HashMap::new(),
            order: Vec::new(),
            key_len,
            layout: op.layout(),
        }
    }

    /// Merge one sub-result (key columns + physical accumulators).
    pub fn absorb(&mut self, h: &Relation) -> Result<()> {
        let width = self.layout.width();
        if h.schema().len() != self.key_len + width {
            return Err(Error::Execution(format!(
                "partial merge arity {} != key {} + accumulators {width}",
                h.schema().len(),
                self.key_len
            )));
        }
        for row in h {
            let (k, accs) = row.values().split_at(self.key_len);
            match self.map.get_mut(k) {
                Some(dst) => self.layout.merge(dst, accs)?,
                None => {
                    self.map.insert(k.to_vec(), accs.to_vec());
                    self.order.push(k.to_vec());
                }
            }
        }
        Ok(())
    }

    /// The merged (still physical) relation, in first-arrival key order.
    pub fn into_relation(self, schema: skalla_relation::SchemaRef) -> Relation {
        let rows = self
            .order
            .into_iter()
            .map(|k| {
                let accs = self.map.get(&k).expect("ordered keys are present");
                let mut vs = Vec::with_capacity(self.key_len + accs.len());
                vs.extend_from_slice(&k);
                vs.extend_from_slice(accs);
                Row::new(vs)
            })
            .collect();
        Relation::from_shared(schema, rows)
    }
}

/// Combine one pair (or a lone leftover) of sub-result chunks with a
/// [`PartialMerge`].
fn merge_pair(pair: &[Relation], key_len: usize, op: &Gmdj) -> Result<Relation> {
    if pair.len() == 1 {
        return Ok(pair[0].clone());
    }
    let mut pm = PartialMerge::new(key_len, op);
    pm.absorb(&pair[0])?;
    pm.absorb(&pair[1])?;
    Ok(pm.into_relation(pair[0].schema_ref()))
}

/// Merge sub-result chunks as a binary tree of [`PartialMerge`]s instead of
/// a left fold, pairing adjacent chunks level by level until one remains.
///
/// Levels with several pairs run them on scoped worker threads (up to
/// `parallelism`). The tree *shape* depends only on `chunks.len()`, and
/// within every [`PartialMerge`] accumulators merge in fixed (left, right)
/// order — so the result is deterministic regardless of thread count, and
/// equal to the left fold by merge associativity (Theorem 1, proven by
/// `partial_merge_is_associative_with_merge_sync`).
///
/// Returns `None` when `chunks` is empty.
pub fn parallel_merge_tree(
    mut chunks: Vec<Relation>,
    key_len: usize,
    op: &Gmdj,
    parallelism: usize,
) -> Result<Option<Relation>> {
    while chunks.len() > 1 {
        let pairs: Vec<&[Relation]> = chunks.chunks(2).collect();
        let merged: Vec<Result<Relation>> = if parallelism > 1 && pairs.len() > 1 {
            let workers = parallelism.min(pairs.len());
            let next = std::sync::atomic::AtomicUsize::new(0);
            let mut out: Vec<Option<Result<Relation>>> =
                (0..pairs.len()).map(|_| None).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let pairs = &pairs;
                        let next = &next;
                        s.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let i = next
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if i >= pairs.len() {
                                    break;
                                }
                                done.push((i, merge_pair(pairs[i], key_len, op)));
                            }
                            done
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, r) in h.join().expect("merge workers do not panic") {
                        out[i] = Some(r);
                    }
                }
            });
            out.into_iter().map(|r| r.expect("every pair merged")).collect()
        } else {
            pairs
                .iter()
                .map(|p| merge_pair(p, key_len, op))
                .collect()
        };
        chunks = merged.into_iter().collect::<Result<Vec<_>>>()?;
    }
    Ok(chunks.pop())
}

/// The finalize-of-nothing aggregate values for a run of operators: what a
/// group's outputs are when no detail tuple anywhere matches it.
pub fn empty_aggregates(ops: &[Gmdj]) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    for op in ops {
        let layout = op.layout();
        out.extend(layout.finalize(&layout.init())?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_gmdj::agg::AggSpec;
    use skalla_gmdj::theta::ThetaBuilder;
    use skalla_relation::{row, DataType};

    fn key() -> Vec<String> {
        vec!["g".to_string()]
    }

    fn op() -> Gmdj {
        Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
        )
    }

    fn b0() -> Relation {
        Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64]],
        )
        .unwrap()
    }

    fn detail_schema() -> Schema {
        Schema::of(&[("g", DataType::Int), ("v", DataType::Int)])
    }

    #[test]
    fn base_sync_dedups_and_checks_key() {
        let mut s = BaseSync::new();
        s.absorb(b0()).unwrap();
        s.absorb(b0()).unwrap();
        let b = s.finish(&key()).unwrap();
        assert_eq!(b.len(), 2);

        // Duplicate keys (distinct rows, same key) are rejected.
        let dup = Relation::new(
            Schema::of(&[("g", DataType::Int), ("x", DataType::Int)]),
            vec![row![1i64, 1i64], row![1i64, 2i64]],
        )
        .unwrap();
        let mut s = BaseSync::new();
        s.absorb(dup).unwrap();
        assert!(s.finish(&key()).is_err());

        assert!(BaseSync::new().finish(&key()).is_err());
    }

    /// Sub-results from two sites merge per Theorem 1 (COUNT sums, AVG
    /// merges sums and counts).
    #[test]
    fn merge_sync_super_aggregates() {
        let mut sync = MergeSync::new(Some(&b0()), &key(), &op()).unwrap();
        // h schema: g, cnt, avg__sum, avg__cnt.
        let h_schema = Schema::of(&[
            ("g", DataType::Int),
            ("cnt", DataType::Int),
            ("avg__sum", DataType::Int),
            ("avg__cnt", DataType::Int),
        ]);
        let h1 = Relation::new(
            h_schema.clone(),
            vec![row![1i64, 2i64, 30i64, 2i64], row![2i64, 1i64, 8i64, 1i64]],
        )
        .unwrap();
        let h2 = Relation::new(
            h_schema,
            vec![row![1i64, 1i64, 30i64, 1i64]],
        )
        .unwrap();
        sync.absorb(&h1).unwrap();
        sync.absorb(&h2).unwrap();
        let out = sync
            .finish(b0().schema(), &op(), &detail_schema())
            .unwrap();
        assert_eq!(out.rows()[0], row![1i64, 3i64, 20.0]);
        assert_eq!(out.rows()[1], row![2i64, 1i64, 8.0]);
    }

    #[test]
    fn merge_sync_rejects_unknown_groups_and_bad_arity() {
        let mut sync = MergeSync::new(Some(&b0()), &key(), &op()).unwrap();
        let h = Relation::new(
            Schema::of(&[
                ("g", DataType::Int),
                ("cnt", DataType::Int),
                ("avg__sum", DataType::Int),
                ("avg__cnt", DataType::Int),
            ]),
            vec![row![9i64, 1i64, 1i64, 1i64]],
        )
        .unwrap();
        assert!(sync.absorb(&h).is_err());
        let bad = Relation::new(
            Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]),
            vec![row![1i64, 1i64]],
        )
        .unwrap();
        assert!(sync.absorb(&bad).is_err());
    }

    #[test]
    fn merge_sync_folded_inserts_new_groups() {
        let mut sync = MergeSync::new(None, &key(), &op()).unwrap();
        let h_schema = Schema::of(&[
            ("g", DataType::Int),
            ("cnt", DataType::Int),
            ("avg__sum", DataType::Int),
            ("avg__cnt", DataType::Int),
        ]);
        sync.absorb(
            &Relation::new(h_schema.clone(), vec![row![2i64, 1i64, 8i64, 1i64]]).unwrap(),
        )
        .unwrap();
        sync.absorb(
            &Relation::new(
                h_schema,
                vec![row![1i64, 2i64, 30i64, 2i64], row![2i64, 2i64, 4i64, 2i64]],
            )
            .unwrap(),
        )
        .unwrap();
        let out = sync
            .finish(b0().schema(), &op(), &detail_schema())
            .unwrap();
        // Sorted by key despite arrival order.
        assert_eq!(out.rows()[0], row![1i64, 2i64, 15.0]);
        assert_eq!(out.rows()[1], row![2i64, 3i64, 4.0]);
    }

    #[test]
    fn chain_sync_rejects_duplicate_groups() {
        let mut sync = ChainSync::new(1);
        let h = Relation::new(
            Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]),
            vec![row![1i64, 5i64]],
        )
        .unwrap();
        sync.absorb(&h).unwrap();
        assert!(sync.absorb(&h).is_err());
    }

    #[test]
    fn chain_sync_fills_unowned_groups() {
        let mut sync = ChainSync::new(1);
        let h = Relation::new(
            Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]),
            vec![row![1i64, 5i64]],
        )
        .unwrap();
        sync.absorb(&h).unwrap();
        let out_schema = Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]);
        let out = sync
            .finish_against(&b0(), &key(), &[Value::Int(0)], out_schema)
            .unwrap();
        assert_eq!(out.rows()[0], row![1i64, 5i64]);
        assert_eq!(out.rows()[1], row![2i64, 0i64]);
    }

    #[test]
    fn chain_sync_folded_sorts_by_key() {
        let mut sync = ChainSync::new(1);
        let schema = Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]);
        sync.absorb(&Relation::new(schema.clone(), vec![row![5i64, 1i64]]).unwrap())
            .unwrap();
        sync.absorb(&Relation::new(schema.clone(), vec![row![2i64, 3i64]]).unwrap())
            .unwrap();
        let out = sync.finish_folded(schema).unwrap();
        assert_eq!(out.rows()[0], row![2i64, 3i64]);
        assert_eq!(out.rows()[1], row![5i64, 1i64]);
    }

    #[test]
    fn chain_sync_rejects_groups_outside_base() {
        let mut sync = ChainSync::new(1);
        let h = Relation::new(
            Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]),
            vec![row![9i64, 5i64]],
        )
        .unwrap();
        sync.absorb(&h).unwrap();
        let out_schema = Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]);
        assert!(sync
            .finish_against(&b0(), &key(), &[Value::Int(0)], out_schema)
            .is_err());
    }

    #[test]
    fn partial_merge_is_associative_with_merge_sync() {
        // Merging h1+h2 regionally and then into X must equal absorbing
        // them directly.
        let h_schema = Schema::of(&[
            ("g", DataType::Int),
            ("cnt", DataType::Int),
            ("avg__sum", DataType::Int),
            ("avg__cnt", DataType::Int),
        ]);
        let h1 = Relation::new(
            h_schema.clone(),
            vec![row![1i64, 2i64, 30i64, 2i64], row![2i64, 1i64, 8i64, 1i64]],
        )
        .unwrap();
        let h2 = Relation::new(h_schema.clone(), vec![row![1i64, 1i64, 30i64, 1i64]]).unwrap();

        // Direct path.
        let mut direct = MergeSync::new(Some(&b0()), &key(), &op()).unwrap();
        direct.absorb(&h1).unwrap();
        direct.absorb(&h2).unwrap();
        let direct_out = direct.finish(b0().schema(), &op(), &detail_schema()).unwrap();

        // Regional path.
        let mut region = PartialMerge::new(1, &op());
        region.absorb(&h1).unwrap();
        region.absorb(&h2).unwrap();
        let regional = region.into_relation(std::sync::Arc::new(h_schema));
        assert_eq!(regional.len(), 2, "groups merged regionally");
        let mut root = MergeSync::new(Some(&b0()), &key(), &op()).unwrap();
        root.absorb(&regional).unwrap();
        let tree_out = root.finish(b0().schema(), &op(), &detail_schema()).unwrap();

        assert_eq!(direct_out, tree_out);
    }

    #[test]
    fn parallel_merge_tree_equals_left_fold() {
        let h_schema = Schema::of(&[
            ("g", DataType::Int),
            ("cnt", DataType::Int),
            ("avg__sum", DataType::Int),
            ("avg__cnt", DataType::Int),
        ]);
        // 7 chunks (odd count exercises the lone-leftover path).
        let chunks: Vec<Relation> = (0..7)
            .map(|i| {
                Relation::new(
                    h_schema.clone(),
                    vec![
                        row![1i64, 1i64, 10 * (i + 1), 1i64],
                        row![2i64, 2i64, i, 2i64],
                    ],
                )
                .unwrap()
            })
            .collect();

        let mut fold = MergeSync::new(Some(&b0()), &key(), &op()).unwrap();
        for c in &chunks {
            fold.absorb(c).unwrap();
        }
        let fold_out = fold.finish(b0().schema(), &op(), &detail_schema()).unwrap();

        for parallelism in [1usize, 4] {
            let merged = parallel_merge_tree(chunks.clone(), 1, &op(), parallelism)
                .unwrap()
                .unwrap();
            let mut sync = MergeSync::new(Some(&b0()), &key(), &op()).unwrap();
            sync.absorb(&merged).unwrap();
            let tree_out = sync.finish(b0().schema(), &op(), &detail_schema()).unwrap();
            assert_eq!(tree_out, fold_out, "parallelism {parallelism}");
        }
    }

    #[test]
    fn parallel_merge_tree_empty_and_single() {
        assert!(parallel_merge_tree(Vec::new(), 1, &op(), 4)
            .unwrap()
            .is_none());
        let h_schema = Schema::of(&[
            ("g", DataType::Int),
            ("cnt", DataType::Int),
            ("avg__sum", DataType::Int),
            ("avg__cnt", DataType::Int),
        ]);
        let one = Relation::new(h_schema, vec![row![1i64, 1i64, 5i64, 1i64]]).unwrap();
        let out = parallel_merge_tree(vec![one.clone()], 1, &op(), 4)
            .unwrap()
            .unwrap();
        assert_eq!(out, one);
    }

    #[test]
    fn partial_merge_rejects_bad_arity() {
        let mut pm = PartialMerge::new(1, &op());
        let bad = Relation::new(
            Schema::of(&[("g", DataType::Int), ("cnt", DataType::Int)]),
            vec![row![1i64, 1i64]],
        )
        .unwrap();
        assert!(pm.absorb(&bad).is_err());
    }

    #[test]
    fn empty_aggregates_finalize_init() {
        let aggs = empty_aggregates(&[op()]).unwrap();
        assert_eq!(aggs, vec![Value::Int(0), Value::Null]);
    }
}
