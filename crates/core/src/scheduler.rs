//! Multi-query admission control.
//!
//! The concurrent engine ([`crate::warehouse::Skalla`]) lets queries
//! share the persistent site connections, but unbounded concurrency
//! would let a burst of queries thrash the sites' morsel pools and the
//! coordinator's merge trees. The [`QueryScheduler`] is a counting
//! semaphore with a *bounded waiting room*:
//!
//! * up to `max_concurrent` queries hold an execution [`Permit`] at
//!   once;
//! * up to `queue_capacity` more wait for a permit, each for at most
//!   `queue_timeout`;
//! * anything beyond that is rejected immediately with
//!   [`AdmissionError::QueueFull`] — fail fast beats an unbounded,
//!   ever-staler backlog under overload.
//!
//! Both failure modes surface as typed errors so callers can
//! distinguish "shed load" from "query broke". The scheduler also
//! hands out the monotonically increasing [`QueryId`]s that frames
//! carry on the wire (id 0 is reserved for the control/legacy stream).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Identifies one admitted query on the wire and in traces. Ids start
/// at 1 and increase monotonically per engine; 0 is reserved for the
/// control/legacy stream.
pub type QueryId = u32;

/// Why a query was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The waiting room is full: `max_concurrent` queries are running
    /// and `queue_capacity` more are already queued.
    QueueFull {
        /// The concurrency limit in force.
        max_concurrent: usize,
        /// The waiting-room bound in force.
        queue_capacity: usize,
    },
    /// A permit did not free up within the queue timeout.
    QueueTimeout {
        /// How long the query waited.
        waited: Duration,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull {
                max_concurrent,
                queue_capacity,
            } => write!(
                f,
                "admission queue full: {max_concurrent} queries running, \
                 {queue_capacity} queued"
            ),
            AdmissionError::QueueTimeout { waited } => write!(
                f,
                "query timed out in the admission queue after {:.1}s",
                waited.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Scheduler knobs; see the module docs for the admission discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// How many queries may execute at once (≥ 1).
    pub max_concurrent: usize,
    /// How many queries may wait for a permit before new arrivals are
    /// rejected outright.
    pub queue_capacity: usize,
    /// How long a queued query waits before giving up.
    pub queue_timeout: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_concurrent: 4,
            queue_capacity: 16,
            queue_timeout: Duration::from_secs(30),
        }
    }
}

/// Shared semaphore state (std primitives: a `Condvar` pairs with
/// `std::sync::Mutex`).
#[derive(Debug)]
struct Sem {
    state: Mutex<SemState>,
    available: Condvar,
}

#[derive(Debug)]
struct SemState {
    /// Permits currently held.
    running: usize,
    /// Queries currently blocked waiting for a permit.
    waiting: usize,
}

/// Admission control for a concurrent engine: a counting semaphore with
/// a bounded, timeout-bounded waiting room, plus the query-id counter.
#[derive(Debug)]
pub struct QueryScheduler {
    cfg: SchedulerConfig,
    sem: Arc<Sem>,
    next_id: AtomicU32,
    admitted: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    coalesced: AtomicU64,
}

impl QueryScheduler {
    /// A scheduler enforcing `cfg` (`max_concurrent` is clamped to ≥ 1).
    pub fn new(cfg: SchedulerConfig) -> QueryScheduler {
        let cfg = SchedulerConfig {
            max_concurrent: cfg.max_concurrent.max(1),
            ..cfg
        };
        QueryScheduler {
            cfg,
            sem: Arc::new(Sem {
                state: Mutex::new(SemState {
                    running: 0,
                    waiting: 0,
                }),
                available: Condvar::new(),
            }),
            next_id: AtomicU32::new(1),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Queries currently holding a permit.
    pub fn running(&self) -> usize {
        self.sem.state.lock().expect("scheduler lock").running
    }

    /// Queries currently waiting for a permit.
    pub fn waiting(&self) -> usize {
        self.sem.state.lock().expect("scheduler lock").waiting
    }

    /// Queries admitted over this scheduler's lifetime (monotonic).
    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Queries rejected outright because the waiting room was full
    /// (monotonic).
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queries that gave up after waiting out the queue timeout
    /// (monotonic).
    pub fn timed_out_total(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Admitted queries that coalesced onto an identical in-flight
    /// query's result instead of executing (monotonic). Tallied by the
    /// engine when the semantic cache elects it a follower.
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Record one coalesced query (see
    /// [`QueryScheduler::coalesced_total`]).
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// The next query id (monotonic, starting at 1; skips 0 on wrap —
    /// id 0 is the control/legacy stream).
    pub fn next_query_id(&self) -> QueryId {
        loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            if id != 0 {
                return id;
            }
        }
    }

    /// Admit a query: returns a [`Permit`] immediately if a slot is
    /// free, waits up to the queue timeout if the waiting room has
    /// space, and rejects with [`AdmissionError::QueueFull`] otherwise.
    /// Dropping the permit releases the slot.
    pub fn admit(&self) -> Result<Permit, AdmissionError> {
        let result = self.admit_inner();
        let counter = match &result {
            Ok(_) => &self.admitted,
            Err(AdmissionError::QueueFull { .. }) => &self.rejected,
            Err(AdmissionError::QueueTimeout { .. }) => &self.timed_out,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn admit_inner(&self) -> Result<Permit, AdmissionError> {
        let mut state = self.sem.state.lock().expect("scheduler lock");
        if state.running < self.cfg.max_concurrent {
            state.running += 1;
            return Ok(Permit {
                sem: Arc::clone(&self.sem),
            });
        }
        if state.waiting >= self.cfg.queue_capacity {
            return Err(AdmissionError::QueueFull {
                max_concurrent: self.cfg.max_concurrent,
                queue_capacity: self.cfg.queue_capacity,
            });
        }
        state.waiting += 1;
        let start = Instant::now();
        let result = loop {
            let remaining = match self.cfg.queue_timeout.checked_sub(start.elapsed()) {
                Some(r) if !r.is_zero() => r,
                _ => {
                    break Err(AdmissionError::QueueTimeout {
                        waited: start.elapsed(),
                    })
                }
            };
            let (next, timed_out) = self
                .sem
                .available
                .wait_timeout(state, remaining)
                .expect("scheduler lock");
            state = next;
            if state.running < self.cfg.max_concurrent {
                state.running += 1;
                break Ok(Permit {
                    sem: Arc::clone(&self.sem),
                });
            }
            if timed_out.timed_out() {
                break Err(AdmissionError::QueueTimeout {
                    waited: start.elapsed(),
                });
            }
        };
        state.waiting -= 1;
        result
    }
}

/// The right to execute one query; dropping it releases the slot and
/// wakes one queued query.
#[derive(Debug)]
pub struct Permit {
    sem: Arc<Sem>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.sem.state.lock().expect("scheduler lock");
        state.running = state.running.saturating_sub(1);
        drop(state);
        self.sem.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(max: usize, cap: usize, timeout_ms: u64) -> QueryScheduler {
        QueryScheduler::new(SchedulerConfig {
            max_concurrent: max,
            queue_capacity: cap,
            queue_timeout: Duration::from_millis(timeout_ms),
        })
    }

    #[test]
    fn admits_up_to_max_concurrent() {
        let s = sched(2, 0, 10);
        let p1 = s.admit().unwrap();
        let _p2 = s.admit().unwrap();
        assert_eq!(s.running(), 2);
        // Queue capacity 0: the third is rejected outright.
        assert_eq!(
            s.admit().unwrap_err(),
            AdmissionError::QueueFull {
                max_concurrent: 2,
                queue_capacity: 0
            }
        );
        drop(p1);
        let _p3 = s.admit().unwrap();
        assert_eq!(s.running(), 2);
    }

    #[test]
    fn queued_query_times_out_cleanly() {
        let s = sched(1, 4, 50);
        let _p = s.admit().unwrap();
        let t = Instant::now();
        match s.admit().unwrap_err() {
            AdmissionError::QueueTimeout { waited } => {
                assert!(waited >= Duration::from_millis(50));
                assert!(t.elapsed() < Duration::from_secs(5), "no unbounded wait");
            }
            e => panic!("expected QueueTimeout, got {e}"),
        }
        assert_eq!(s.waiting(), 0, "waiter count restored after timeout");
    }

    #[test]
    fn released_permit_wakes_a_waiter() {
        let s = Arc::new(sched(1, 4, 5_000));
        let p = s.admit().unwrap();
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.admit().map(|_| ()));
        // Give the waiter time to enqueue, then free the slot.
        while s.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(p);
        waiter.join().unwrap().expect("waiter admitted");
    }

    #[test]
    fn query_ids_start_at_one_and_increase() {
        let s = sched(1, 0, 10);
        assert_eq!(s.next_query_id(), 1);
        assert_eq!(s.next_query_id(), 2);
        assert_eq!(s.next_query_id(), 3);
    }

    #[test]
    fn lifetime_totals_tally_every_outcome() {
        let s = sched(1, 0, 10);
        let p = s.admit().unwrap();
        assert!(s.admit().is_err()); // queue capacity 0 → rejected
        drop(p);
        let s2 = sched(1, 4, 20);
        let _p = s2.admit().unwrap();
        assert!(s2.admit().is_err()); // waits, then times out
        assert_eq!(
            (s.admitted_total(), s.rejected_total(), s.timed_out_total()),
            (1, 1, 0)
        );
        assert_eq!(
            (s2.admitted_total(), s2.rejected_total(), s2.timed_out_total()),
            (1, 0, 1)
        );
    }

    #[test]
    fn errors_display_cleanly() {
        let full = AdmissionError::QueueFull {
            max_concurrent: 4,
            queue_capacity: 16,
        };
        assert!(full.to_string().contains("queue full"));
        let to = AdmissionError::QueueTimeout {
            waited: Duration::from_secs(30),
        };
        assert!(to.to_string().contains("timed out"));
    }
}
