//! Binary codec for distributed plans.
//!
//! The coordinator broadcasts the encoded plan to every site at the start
//! of execution (message `TAG_PLAN`), so plan distribution crosses the
//! accounted transport like everything else. Plans are a few hundred
//! bytes — negligible next to the base-structure traffic, but now
//! measured instead of assumed.

use crate::plan::{DistributedPlan, SiteFilter, Stage, StageKind, Unit};
use skalla_gmdj::codec::{get_gmdj_expr, put_gmdj_expr};
use skalla_gmdj::EvalOptions;
use skalla_relation::codec::{Decoder, Encoder};
use skalla_relation::{Error, Result};

fn put_strings(enc: &mut Encoder, v: &[String]) {
    enc.put_u32(v.len() as u32);
    for s in v {
        enc.put_str(s);
    }
}

fn get_strings(dec: &mut Decoder<'_>) -> Result<Vec<String>> {
    let n = dec.get_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.get_str()?);
    }
    Ok(out)
}

fn put_unit(enc: &mut Encoder, u: &Unit) {
    enc.put_u32(u.ops.start as u32);
    enc.put_u32(u.ops.end as u32);
    enc.put_str(&u.table);
    enc.put_u8(u.fold_base as u8);
    enc.put_u8(u.local_chain as u8);
    match &u.ownership {
        Some((b, d)) => {
            enc.put_u8(1);
            enc.put_str(b);
            enc.put_str(d);
        }
        None => enc.put_u8(0),
    }
    put_strings(enc, &u.ship_columns);
    enc.put_u32(u.site_filters.len() as u32);
    for f in &u.site_filters {
        match f {
            SiteFilter::All => enc.put_u8(0),
            SiteFilter::Skip => enc.put_u8(1),
            SiteFilter::Predicate(p) => {
                enc.put_u8(2);
                enc.put_expr(p);
            }
        }
    }
    enc.put_u8(u.site_reduce as u8);
}

fn get_unit(dec: &mut Decoder<'_>) -> Result<Unit> {
    let start = dec.get_u32()? as usize;
    let end = dec.get_u32()? as usize;
    let table = dec.get_str()?;
    let fold_base = dec.get_u8()? != 0;
    let local_chain = dec.get_u8()? != 0;
    let ownership = match dec.get_u8()? {
        0 => None,
        1 => Some((dec.get_str()?, dec.get_str()?)),
        t => return Err(Error::Codec(format!("bad ownership flag {t}"))),
    };
    let ship_columns = get_strings(dec)?;
    let n_filters = dec.get_u32()? as usize;
    let mut site_filters = Vec::with_capacity(n_filters);
    for _ in 0..n_filters {
        site_filters.push(match dec.get_u8()? {
            0 => SiteFilter::All,
            1 => SiteFilter::Skip,
            2 => SiteFilter::Predicate(dec.get_expr()?),
            t => return Err(Error::Codec(format!("bad site filter tag {t}"))),
        });
    }
    let site_reduce = dec.get_u8()? != 0;
    Ok(Unit {
        ops: start..end,
        table,
        fold_base,
        local_chain,
        ownership,
        ship_columns,
        site_filters,
        site_reduce,
    })
}

fn put_eval_options(enc: &mut Encoder, opts: &EvalOptions) {
    enc.put_u8(opts.hash_path as u8);
    enc.put_u32(opts.parallelism as u32);
    enc.put_u32(opts.morsel_rows.min(u32::MAX as usize) as u32);
    enc.put_u8(opts.legacy_probe as u8);
    enc.put_u8(opts.columnar as u8);
    enc.put_u8(opts.skew_balance as u8);
    enc.put_u8(opts.cache as u8);
    match opts.fault_panic_morsel {
        Some(m) => {
            enc.put_u8(1);
            enc.put_u32(m as u32);
        }
        None => enc.put_u8(0),
    }
}

fn get_eval_options(dec: &mut Decoder<'_>) -> Result<EvalOptions> {
    let hash_path = dec.get_u8()? != 0;
    let parallelism = dec.get_u32()? as usize;
    let morsel_rows = (dec.get_u32()? as usize).max(1);
    let legacy_probe = dec.get_u8()? != 0;
    let columnar = dec.get_u8()? != 0;
    let skew_balance = dec.get_u8()? != 0;
    let cache = dec.get_u8()? != 0;
    let fault_panic_morsel = match dec.get_u8()? {
        0 => None,
        1 => Some(dec.get_u32()? as usize),
        t => return Err(Error::Codec(format!("bad fault flag {t}"))),
    };
    Ok(EvalOptions {
        hash_path,
        parallelism,
        morsel_rows,
        legacy_probe,
        columnar,
        skew_balance,
        cache,
        fault_panic_morsel,
    })
}

/// Encode the evaluation options, the row-blocking chunk size, and then
/// the plan — the `TAG_PLAN` payload the coordinator broadcasts, so every
/// site runs its kernel with the cluster-configured knobs. Carrying
/// `chunk_rows` in-band (rather than at thread-spawn time) means a remote
/// site process chunks its results exactly like an in-process site, which
/// the transport-invariance of the byte accounting depends on.
pub fn encode_plan_with_options(
    plan: &DistributedPlan,
    opts: &EvalOptions,
    chunk_rows: Option<usize>,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    put_eval_options(&mut enc, opts);
    match chunk_rows {
        Some(rows) => {
            enc.put_u8(1);
            enc.put_u32(rows.min(u32::MAX as usize) as u32);
        }
        None => enc.put_u8(0),
    }
    let mut bytes = enc.finish();
    bytes.extend(encode_plan(plan));
    bytes
}

/// Decode a `TAG_PLAN` payload: evaluation options, chunk size, plan.
pub fn decode_plan_with_options(
    bytes: &[u8],
) -> Result<(DistributedPlan, EvalOptions, Option<usize>)> {
    let mut dec = Decoder::new(bytes);
    let opts = get_eval_options(&mut dec)?;
    let chunk_rows = match dec.get_u8()? {
        0 => None,
        1 => Some((dec.get_u32()? as usize).max(1)),
        t => return Err(Error::Codec(format!("bad chunk flag {t}"))),
    };
    let consumed = bytes.len() - dec.remaining();
    let plan = decode_plan(&bytes[consumed..])?;
    Ok((plan, opts, chunk_rows))
}

/// Encode a distributed plan to bytes.
pub fn encode_plan(plan: &DistributedPlan) -> Vec<u8> {
    let mut enc = Encoder::new();
    put_gmdj_expr(&mut enc, &plan.expr);
    put_strings(&mut enc, &plan.key);
    enc.put_u32(plan.stages.len() as u32);
    for s in &plan.stages {
        enc.put_str(&s.label);
        match &s.kind {
            StageKind::Base => enc.put_u8(0),
            StageKind::Unit(u) => {
                enc.put_u8(1);
                put_unit(&mut enc, u);
            }
        }
    }
    put_strings(&mut enc, &plan.notes);
    enc.finish()
}

/// Decode a distributed plan, requiring full consumption.
pub fn decode_plan(bytes: &[u8]) -> Result<DistributedPlan> {
    let mut dec = Decoder::new(bytes);
    let expr = get_gmdj_expr(&mut dec)?;
    let key = get_strings(&mut dec)?;
    let n_stages = dec.get_u32()? as usize;
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let label = dec.get_str()?;
        let kind = match dec.get_u8()? {
            0 => StageKind::Base,
            1 => StageKind::Unit(get_unit(&mut dec)?),
            t => return Err(Error::Codec(format!("bad stage tag {t}"))),
        };
        stages.push(Stage { label, kind });
    }
    let notes = get_strings(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(Error::Codec(format!(
            "{} trailing bytes after plan",
            dec.remaining()
        )));
    }
    Ok(DistributedPlan {
        expr,
        key,
        stages,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionInfo;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{Domain, DomainMap};

    fn planner_with_knowledge() -> Planner {
        let mut d = DistributionInfo::new(3);
        d.set_table(
            "t",
            (0..3)
                .map(|i| DomainMap::new().with("g", Domain::IntRange(10 * i, 10 * i + 9)))
                .collect(),
        );
        Planner::new(d)
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c"), AggSpec::avg("v", "a")],
            ))
            .gmdj(
                Gmdj::new("t").block(
                    ThetaBuilder::group_by(&["g"])
                        .and(Expr::dcol("v").ge(Expr::bcol("a")))
                        .build(),
                    vec![AggSpec::count("above")],
                ),
            )
            .build()
    }

    #[test]
    fn plans_round_trip_under_every_flag_set() {
        let planner = planner_with_knowledge();
        for bits in 0..16u32 {
            let flags = OptFlags {
                coalesce: bits & 1 != 0,
                group_reduction_site: bits & 2 != 0,
                group_reduction_coord: bits & 4 != 0,
                sync_reduction: bits & 8 != 0,
            };
            let plan = planner.optimize(&expr(), flags);
            let bytes = encode_plan(&plan);
            let back = decode_plan(&bytes).unwrap_or_else(|e| panic!("{flags:?}: {e}"));
            assert_eq!(back, plan, "{flags:?}");
        }
    }

    #[test]
    fn plan_with_options_round_trips() {
        let plan = planner_with_knowledge().optimize(&expr(), OptFlags::all());
        for opts in [
            EvalOptions {
                hash_path: true,
                parallelism: 0,
                morsel_rows: 65_536,
                legacy_probe: false,
                columnar: true,
                skew_balance: true,
                cache: true,
                fault_panic_morsel: None,
            },
            EvalOptions {
                hash_path: false,
                parallelism: 7,
                morsel_rows: 256,
                legacy_probe: true,
                columnar: false,
                skew_balance: false,
                cache: false,
                fault_panic_morsel: Some(3),
            },
        ] {
            for chunk_rows in [None, Some(512)] {
                let bytes = encode_plan_with_options(&plan, &opts, chunk_rows);
                let (back_plan, back_opts, back_chunk) = decode_plan_with_options(&bytes).unwrap();
                assert_eq!(back_plan, plan);
                assert_eq!(back_chunk, chunk_rows);
                assert_eq!(back_opts.hash_path, opts.hash_path);
                assert_eq!(back_opts.parallelism, opts.parallelism);
                assert_eq!(back_opts.morsel_rows, opts.morsel_rows);
                assert_eq!(back_opts.legacy_probe, opts.legacy_probe);
                assert_eq!(back_opts.columnar, opts.columnar);
                assert_eq!(back_opts.skew_balance, opts.skew_balance);
                assert_eq!(back_opts.cache, opts.cache);
                assert_eq!(back_opts.fault_panic_morsel, opts.fault_panic_morsel);
            }
        }
    }

    #[test]
    fn truncation_rejected() {
        let plan = planner_with_knowledge().optimize(&expr(), OptFlags::all());
        let bytes = encode_plan(&plan);
        assert!(decode_plan(&bytes[..bytes.len() / 2]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_plan(&padded).is_err());
    }

    #[test]
    fn plan_size_is_small() {
        let plan = planner_with_knowledge().optimize(&expr(), OptFlags::all());
        let bytes = encode_plan(&plan);
        assert!(
            bytes.len() < 4096,
            "plans should be tiny, got {} bytes",
            bytes.len()
        );
    }
}
