//! The semantic sub-aggregate cache behind the [`crate::Warehouse`] API.
//!
//! The paper's GMDJ decomposition makes round results the natural unit
//! of reuse: every synchronization round produces a finalized base
//! structure `B_j` (the sub-aggregates of stages `0..=j` merged and
//! finalized at the coordinator), and `B_j` is exactly the input the
//! next stage ships back out. A dashboard workload re-requests the same
//! plans over and over, so the concurrent engine keeps those structures
//! in a [`SemanticCache`]:
//!
//! * **Full-result hits** — a plan whose fingerprint (all stages) is
//!   cached is answered without contacting a single site.
//! * **Prefix hits** — a plan sharing only a *prefix* of stages with a
//!   cached query resumes from the cached `B_j` snapshot: stages
//!   `0..=j` are skipped (their rounds stay in the stats with zero
//!   traffic) and execution starts at stage `j+1`. Sites evaluate each
//!   stage statelessly from the shipped fragment, so resuming is safe
//!   by construction.
//! * **In-flight coalescing** — concurrent identical queries (the `run
//!   --concurrency` shape) elect a leader; followers block on the
//!   leader's [`InFlight`] cell and are served its result, so the sites
//!   are contacted once per distinct plan, not once per submission.
//!
//! ## Fingerprints and epochs
//!
//! A [`Fingerprint`] is a canonical, structural 128-bit hash of a
//! [`DistributedPlan`] prefix. Canonicalization erases every
//! presentation detail that cannot change the result bits: stage labels
//! and planner notes are cleared, `ship_columns` are sorted (sites
//! address fragment columns by name), and θ conjunctions are flattened
//! and sorted (boolean ∧ is commutative and associative). Everything
//! that *can* change the bits stays in the hash: the base query and its
//! column order, the key, every operator's θ/aggregate list (names
//! included — they are the output schema), the stage/unit structure,
//! and [`EvalOptions::morsel_rows`] (the one kernel knob the output
//! bits depend on; thread count, kernel choice, and skew balancing are
//! bit-identical by the engine's invariants and deliberately excluded).
//!
//! Every cache key also carries the **partition epoch** at lookup time.
//! Any catalog or partition mutation bumps the epoch
//! ([`SemanticCache::bump_epoch`]), which makes every existing entry
//! unreachable — stale hits are impossible by construction, not by
//! invalidation bookkeeping.
//!
//! Entries live in an LRU keyed store with a byte budget
//! ([`SemanticCache::new`]); `cache.hits/misses/rollups/bytes` are
//! exported as obs counters by the engine.

use crate::plan::{DistributedPlan, SiteFilter, Stage, StageKind, Unit};
use crate::plan_codec::encode_plan;
use skalla_gmdj::eval::EvalOptions;
use skalla_gmdj::{Gmdj, GmdjBlock, GmdjExpr};
use skalla_relation::codec::Encoder;
use skalla_relation::{Expr, Relation};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A canonical, structural 128-bit hash of a plan prefix (see the
/// module docs for what is normalized away and what is kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Byte encoding of an expression (the sort key for θ conjuncts).
fn expr_bytes(e: &Expr) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_expr(e);
    enc.finish()
}

/// Flatten an `And` tree into its conjunct list, canonicalizing each
/// leaf on the way down.
fn collect_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        other => out.push(canonical_expr(other)),
    }
}

/// θ canonicalization: flatten ∧-chains and sort the conjuncts by their
/// byte encoding. Boolean ∧ is commutative and associative, so two θs
/// differing only in conjunct order select identical ranges — and must
/// fingerprint identically. Applied recursively (a conjunction nested
/// under ∨/¬ is canonicalized in place).
fn canonical_expr(e: &Expr) -> Expr {
    match e {
        Expr::And(..) => {
            let mut conjuncts = Vec::new();
            collect_conjuncts(e, &mut conjuncts);
            conjuncts.sort_by_key(expr_bytes);
            Expr::conjunction(conjuncts)
        }
        Expr::Or(a, b) => Expr::Or(
            Box::new(canonical_expr(a)),
            Box::new(canonical_expr(b)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(canonical_expr(a))),
        other => other.clone(),
    }
}

fn canonical_unit(u: &Unit) -> Unit {
    let mut ship_columns = u.ship_columns.clone();
    // Sites address fragment columns by name, so the ship order cannot
    // change the result (or the byte *count* on the wire).
    ship_columns.sort();
    Unit {
        ops: u.ops.clone(),
        table: u.table.clone(),
        fold_base: u.fold_base,
        local_chain: u.local_chain,
        ownership: u.ownership.clone(),
        ship_columns,
        site_filters: u
            .site_filters
            .iter()
            .map(|f| match f {
                SiteFilter::Predicate(p) => SiteFilter::Predicate(canonical_expr(p)),
                other => other.clone(),
            })
            .collect(),
        site_reduce: u.site_reduce,
    }
}

fn canonical_gmdj(g: &Gmdj) -> Gmdj {
    Gmdj {
        detail: g.detail.clone(),
        blocks: g
            .blocks
            .iter()
            .map(|b| GmdjBlock {
                theta: canonical_expr(&b.theta),
                aggs: b.aggs.clone(),
            })
            .collect(),
    }
}

/// The canonical form of the first `n_stages` stages of a plan: labels
/// and notes cleared, θs canonicalized, ship columns sorted, and the
/// operator list truncated to what those stages reference — so two
/// plans sharing a stage prefix share the prefix's canonical bytes even
/// when their suffixes differ.
fn canonical_prefix_plan(plan: &DistributedPlan, n_stages: usize) -> DistributedPlan {
    let stages: Vec<Stage> = plan.stages[..n_stages]
        .iter()
        .map(|s| Stage {
            label: String::new(),
            kind: match &s.kind {
                StageKind::Base => StageKind::Base,
                StageKind::Unit(u) => StageKind::Unit(canonical_unit(u)),
            },
        })
        .collect();
    let max_op = stages
        .iter()
        .map(|s| match &s.kind {
            StageKind::Unit(u) => u.ops.end,
            StageKind::Base => 0,
        })
        .max()
        .unwrap_or(0);
    DistributedPlan {
        expr: GmdjExpr {
            base: plan.expr.base.clone(),
            key: plan.expr.key.clone(),
            ops: plan.expr.ops[..max_op].iter().map(canonical_gmdj).collect(),
        },
        key: plan.key.clone(),
        stages,
        notes: Vec::new(),
    }
}

fn fingerprint_bytes(bytes: &[u8]) -> Fingerprint {
    let mut hi = DefaultHasher::new();
    1u8.hash(&mut hi);
    bytes.hash(&mut hi);
    let mut lo = DefaultHasher::new();
    2u8.hash(&mut lo);
    bytes.hash(&mut lo);
    Fingerprint(((hi.finish() as u128) << 64) | lo.finish() as u128)
}

fn fingerprint_prefix(plan: &DistributedPlan, eval: &EvalOptions, n_stages: usize) -> Fingerprint {
    let mut bytes = encode_plan(&canonical_prefix_plan(plan, n_stages));
    // The one kernel knob the output bits depend on: the morsel size
    // fixes the accumulator merge structure (see EvalOptions docs).
    bytes.extend_from_slice(&(eval.morsel_rows as u64).to_le_bytes());
    fingerprint_bytes(&bytes)
}

/// One fingerprint per stage prefix: index `j` covers stages `0..=j`,
/// so the last entry is the full-plan fingerprint and entry `j` keys
/// the synchronized base structure `B` after stage `j`.
pub fn plan_fingerprints(plan: &DistributedPlan, eval: &EvalOptions) -> Vec<Fingerprint> {
    (1..=plan.stages.len())
        .map(|n| fingerprint_prefix(plan, eval, n))
        .collect()
}

/// The full-plan fingerprint (all stages) — the key a finished query
/// result is cached and looked up under.
pub fn plan_fingerprint(plan: &DistributedPlan, eval: &EvalOptions) -> Fingerprint {
    fingerprint_prefix(plan, eval, plan.stages.len())
}

/// A monotonic snapshot of the cache counters (see
/// [`SemanticCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered entirely from a cached full result.
    pub hits: u64,
    /// Queries that had to execute (fully, or resuming from a prefix).
    pub misses: u64,
    /// Queries served by coalescing onto an identical in-flight query.
    pub coalesced: u64,
    /// Executing queries that resumed from a cached stage prefix.
    pub prefix_hits: u64,
    /// Cube grouping sets served by local roll-up instead of execution.
    pub rollups: u64,
    /// Encoded bytes currently held (≤ the byte budget).
    pub bytes: u64,
    /// Entries currently held.
    pub entries: u64,
    /// The current partition epoch.
    pub epoch: u64,
}

/// One cached relation: a synchronized base structure (prefix snapshot)
/// or a finished query result (full-plan key).
struct Entry {
    relation: Relation,
    bytes: usize,
    /// LRU stamp: the store clock at the last touch.
    stamp: u64,
}

#[derive(Default)]
struct Store {
    map: HashMap<(Fingerprint, u64), Entry>,
    clock: u64,
    bytes: usize,
}

/// The synchronization cell an in-flight leader publishes its result
/// through; followers of the same fingerprint block on it instead of
/// executing.
pub struct InFlight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Running,
    Done(Relation),
    /// The leader errored (or was dropped without finishing); followers
    /// fall back to executing themselves.
    Failed,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            state: Mutex::new(FlightState::Running),
            done: Condvar::new(),
        }
    }

    /// Block until the leader finishes (or `timeout` expires). `Some`
    /// is the leader's bit-identical result; `None` means the leader
    /// failed or the wait timed out — execute the query yourself.
    pub fn wait(&self, timeout: Duration) -> Option<Relation> {
        let mut state = self.state.lock().expect("in-flight lock"); // lint: allow(panic) poisoned only if a holder panicked
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match &*state {
                FlightState::Done(rel) => return Some(rel.clone()),
                FlightState::Failed => return None,
                FlightState::Running => {}
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, timed_out) = self
                .done
                .wait_timeout(state, remaining)
                .expect("in-flight lock"); // lint: allow(panic) poisoned only if a holder panicked
            state = next;
            if timed_out.timed_out() {
                if let FlightState::Done(rel) = &*state {
                    return Some(rel.clone());
                }
                return None;
            }
        }
    }
}

type InFlightMap = Mutex<HashMap<(Fingerprint, u64), Arc<InFlight>>>;

/// The leader's obligation: publish the result (or failure) to the
/// followers and retire the in-flight registration. Dropping the token
/// without [`LeaderToken::finish`] publishes a failure, so followers
/// can never deadlock on a leader that errored out.
pub struct LeaderToken {
    key: (Fingerprint, u64),
    flight: Arc<InFlight>,
    registry: Arc<InFlightMap>,
    finished: bool,
}

impl LeaderToken {
    /// Publish the leader's outcome: `Some` serves every follower the
    /// bit-identical relation; `None` wakes them to execute themselves.
    pub fn finish(mut self, result: Option<&Relation>) {
        self.publish(result);
        self.finished = true;
    }

    fn publish(&self, result: Option<&Relation>) {
        {
            let mut state = self.flight.state.lock().expect("in-flight lock"); // lint: allow(panic) poisoned only if a holder panicked
            *state = match result {
                Some(rel) => FlightState::Done(rel.clone()),
                None => FlightState::Failed,
            };
        }
        self.flight.done.notify_all();
        self.registry
            .lock()
            .expect("in-flight registry lock") // lint: allow(panic) poisoned only if a holder panicked
            .remove(&self.key);
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        if !self.finished {
            self.publish(None);
        }
    }
}

/// Whether a query leads or follows the in-flight registration for its
/// fingerprint (see [`SemanticCache::join_or_lead`]).
pub enum Role {
    /// First submission of this fingerprint: execute, then
    /// [`LeaderToken::finish`].
    Leader(LeaderToken),
    /// An identical query is already executing: wait on its cell.
    Follower(Arc<InFlight>),
}

/// A concurrent semantic result cache: LRU over (fingerprint, epoch)
/// keys with a byte budget, plus the in-flight coalescing registry. See
/// the module docs for the design.
pub struct SemanticCache {
    budget: usize,
    epoch: AtomicU64,
    store: Mutex<Store>,
    inflight: Arc<InFlightMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    prefix_hits: AtomicU64,
    rollups: AtomicU64,
}

impl fmt::Debug for SemanticCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("SemanticCache")
            .field("budget", &self.budget)
            .field("stats", &s)
            .finish()
    }
}

/// Default cache byte budget (64 MiB) when none is configured.
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

impl SemanticCache {
    /// An empty cache holding at most `budget_bytes` of encoded
    /// relations (least-recently-used entries are evicted past it).
    pub fn new(budget_bytes: usize) -> SemanticCache {
        SemanticCache {
            budget: budget_bytes,
            epoch: AtomicU64::new(0),
            store: Mutex::new(Store::default()),
            inflight: Arc::new(Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            prefix_hits: AtomicU64::new(0),
            rollups: AtomicU64::new(0),
        }
    }

    /// The byte budget in force.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// The current partition epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bump the partition epoch — the required step after **any**
    /// catalog or partition mutation. Every cached entry was keyed
    /// under an older epoch and becomes unreachable atomically; the
    /// store is drained eagerly to return the budget. In-flight queries
    /// keep the epoch they were admitted under, so their (now stale)
    /// insertions are dropped on arrival.
    pub fn bump_epoch(&self) -> u64 {
        let new = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut store = self.store.lock().expect("cache store lock"); // lint: allow(panic) poisoned only if a holder panicked
        store.map.clear();
        store.bytes = 0;
        new
    }

    /// Look up a relation under the **current** epoch. Touches the LRU
    /// stamp. Does not tally hit/miss counters — outcomes are tallied
    /// by the engine once per query (a prefix probe must not inflate
    /// the miss count).
    pub fn lookup(&self, fp: Fingerprint) -> Option<Relation> {
        let key = (fp, self.epoch());
        let mut store = self.store.lock().expect("cache store lock"); // lint: allow(panic) poisoned only if a holder panicked
        store.clock += 1;
        let clock = store.clock;
        store.map.get_mut(&key).map(|e| {
            e.stamp = clock;
            e.relation.clone()
        })
    }

    /// Insert a relation computed under `epoch`. A stale epoch (the
    /// catalog changed while the query ran) is silently dropped — the
    /// entry could never be looked up again. Entries larger than the
    /// whole budget are not stored; otherwise least-recently-used
    /// entries are evicted until the budget holds.
    pub fn insert_at(&self, fp: Fingerprint, epoch: u64, relation: &Relation) {
        if epoch != self.epoch() {
            return;
        }
        let bytes = relation.encoded_size();
        if bytes > self.budget {
            return;
        }
        let mut store = self.store.lock().expect("cache store lock"); // lint: allow(panic) poisoned only if a holder panicked
        store.clock += 1;
        let stamp = store.clock;
        if let Some(old) = store.map.insert(
            (fp, epoch),
            Entry {
                relation: relation.clone(),
                bytes,
                stamp,
            },
        ) {
            store.bytes -= old.bytes;
        }
        store.bytes += bytes;
        while store.bytes > self.budget {
            let Some(victim) = store
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(e) = store.map.remove(&victim) {
                store.bytes -= e.bytes;
            }
        }
    }

    /// Insert under the current epoch (epoch-capture convenience for
    /// callers without an in-flight epoch).
    pub fn insert(&self, fp: Fingerprint, relation: &Relation) {
        self.insert_at(fp, self.epoch(), relation);
    }

    /// Register this query against the in-flight table: the first
    /// submission of a fingerprint (under the current epoch) leads and
    /// must [`LeaderToken::finish`]; later identical submissions follow
    /// and wait on the leader's cell.
    pub fn join_or_lead(&self, fp: Fingerprint) -> Role {
        let key = (fp, self.epoch());
        let mut reg = self.inflight.lock().expect("in-flight registry lock"); // lint: allow(panic) poisoned only if a holder panicked
        if let Some(flight) = reg.get(&key) {
            return Role::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(InFlight::new());
        reg.insert(key, Arc::clone(&flight));
        Role::Leader(LeaderToken {
            key,
            flight,
            registry: Arc::clone(&self.inflight),
            finished: false,
        })
    }

    /// Tally a full-result hit.
    pub fn tally_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Tally an executed query (cold, or resumed from a prefix).
    pub fn tally_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Tally a query served by coalescing onto an in-flight leader.
    pub fn tally_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Tally an executing query that resumed from a cached prefix.
    pub fn tally_prefix_hit(&self) {
        self.prefix_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Tally `n` cube grouping sets served by local roll-up.
    pub fn tally_rollups(&self, n: u64) {
        self.rollups.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot every counter plus the current occupancy.
    pub fn stats(&self) -> CacheStats {
        let (bytes, entries) = {
            let store = self.store.lock().expect("cache store lock"); // lint: allow(panic) poisoned only if a holder panicked
            (store.bytes as u64, store.map.len() as u64)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            prefix_hits: self.prefix_hits.load(Ordering::Relaxed),
            rollups: self.rollups.load(Ordering::Relaxed),
            bytes,
            entries,
            epoch: self.epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionInfo;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Domain, DomainMap, Schema};

    fn planner() -> Planner {
        let mut d = DistributionInfo::new(2);
        d.set_table(
            "t",
            (0..2)
                .map(|i| DomainMap::new().with("g", Domain::IntRange(10 * i, 10 * i + 9)))
                .collect(),
        );
        Planner::new(d)
    }

    fn expr_with(theta_order_flipped: bool) -> GmdjExpr {
        let a = Expr::dcol("g").eq(Expr::bcol("g"));
        let b = Expr::dcol("v").ge(Expr::lit(5i64));
        let theta = if theta_order_flipped {
            b.and(a)
        } else {
            a.and(b)
        };
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(theta, vec![AggSpec::count("cnt")]))
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::sum("v", "s")],
            ))
            .build()
    }

    fn rel(v: i64) -> Relation {
        Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![v]],
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_ignores_labels_notes_and_conjunct_order() {
        let eval = EvalOptions::default();
        let p1 = planner().optimize(&expr_with(false), OptFlags::all());
        let mut p2 = planner().optimize(&expr_with(true), OptFlags::all());
        for s in &mut p2.stages {
            s.label = format!("renamed {}", s.label);
        }
        p2.notes.push("a planner note".to_string());
        assert_eq!(plan_fingerprint(&p1, &eval), plan_fingerprint(&p2, &eval));
    }

    #[test]
    fn fingerprint_separates_structure_flags_and_morsels() {
        let eval = EvalOptions::default();
        let base = planner().optimize(&expr_with(false), OptFlags::all());
        // Different optimization flags → different stage structure.
        let other_flags = planner().optimize(&expr_with(false), OptFlags::none());
        assert_ne!(
            plan_fingerprint(&base, &eval),
            plan_fingerprint(&other_flags, &eval)
        );
        // Different aggregate name → different output schema.
        let renamed = {
            let mut e = expr_with(false);
            e.ops[0].blocks[0].aggs[0].name = "other".to_string();
            planner().optimize(&e, OptFlags::all())
        };
        assert_ne!(
            plan_fingerprint(&base, &eval),
            plan_fingerprint(&renamed, &eval)
        );
        // Different morsel size → different merge structure (bits).
        let coarse = EvalOptions {
            morsel_rows: eval.morsel_rows * 2,
            ..eval
        };
        assert_ne!(
            plan_fingerprint(&base, &eval),
            plan_fingerprint(&base, &coarse)
        );
        // Bit-identical knobs are excluded.
        let columnar_off = EvalOptions {
            columnar: false,
            parallelism: 7,
            ..eval
        };
        assert_eq!(
            plan_fingerprint(&base, &eval),
            plan_fingerprint(&base, &columnar_off)
        );
    }

    #[test]
    fn prefix_fingerprints_shared_across_different_suffixes() {
        let eval = EvalOptions::default();
        let shared = planner().optimize(&expr_with(false), OptFlags::none());
        assert!(shared.stages.len() >= 2, "need a multi-stage plan");
        // Same stage prefix, structurally different final stage.
        let mut forked = shared.clone();
        if let StageKind::Unit(u) = &mut forked.stages.last_mut().unwrap().kind {
            u.site_reduce = !u.site_reduce;
        } else {
            panic!("last stage should be a unit");
        }
        let fa = plan_fingerprints(&shared, &eval);
        let fb = plan_fingerprints(&forked, &eval);
        assert_eq!(fa.len(), shared.stages.len());
        for (a, b) in fa.iter().zip(&fb).take(fa.len() - 1) {
            assert_eq!(a, b, "shared prefixes must agree");
        }
        assert_ne!(fa.last(), fb.last(), "diverging suffix must differ");
    }

    #[test]
    fn lru_respects_byte_budget() {
        let r = rel(1);
        let unit = r.encoded_size();
        let cache = SemanticCache::new(unit * 2 + 1);
        let fps: Vec<Fingerprint> = (0..3).map(|i| fingerprint_bytes(&[i as u8])).collect();
        cache.insert(fps[0], &rel(10));
        cache.insert(fps[1], &rel(11));
        // Touch fps[0] so fps[1] is the LRU victim.
        assert!(cache.lookup(fps[0]).is_some());
        cache.insert(fps[2], &rel(12));
        assert!(cache.lookup(fps[0]).is_some());
        assert!(cache.lookup(fps[1]).is_none(), "LRU victim evicted");
        assert!(cache.lookup(fps[2]).is_some());
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert!(s.bytes <= cache.budget_bytes() as u64);
        // An entry larger than the whole budget is refused.
        let tiny = SemanticCache::new(1);
        tiny.insert(fps[0], &rel(1));
        assert_eq!(tiny.stats().entries, 0);
    }

    #[test]
    fn epoch_bump_invalidates_every_dependent_entry() {
        let cache = SemanticCache::new(1 << 20);
        let fp = fingerprint_bytes(b"q");
        cache.insert(fp, &rel(1));
        assert!(cache.lookup(fp).is_some());
        let before = cache.epoch();
        assert_eq!(cache.bump_epoch(), before + 1);
        assert!(cache.lookup(fp).is_none(), "old-epoch entry unreachable");
        assert_eq!(cache.stats().bytes, 0, "budget returned eagerly");
        // An insertion raced by the bump (captured the old epoch) is
        // dropped rather than stored unreachable.
        cache.insert_at(fp, before, &rel(2));
        assert_eq!(cache.stats().entries, 0);
        // Entries inserted under the new epoch work normally.
        cache.insert(fp, &rel(3));
        assert!(cache.lookup(fp).is_some());
    }

    #[test]
    fn coalescing_serves_followers_and_survives_leader_failure() {
        let cache = Arc::new(SemanticCache::new(1 << 20));
        let fp = fingerprint_bytes(b"inflight");
        let Role::Leader(token) = cache.join_or_lead(fp) else {
            panic!("first submission must lead");
        };
        let Role::Follower(flight) = cache.join_or_lead(fp) else {
            panic!("second submission must follow");
        };
        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || flight.wait(Duration::from_secs(5)))
        };
        token.finish(Some(&rel(7)));
        assert_eq!(waiter.join().unwrap(), Some(rel(7)));
        // The registration retired with the leader: next query leads.
        let Role::Leader(token2) = cache.join_or_lead(fp) else {
            panic!("registration must retire after finish");
        };
        // A dropped (failed) leader wakes followers with None.
        let Role::Follower(flight2) = cache.join_or_lead(fp) else {
            panic!("second submission must follow");
        };
        drop(token2);
        assert_eq!(flight2.wait(Duration::from_secs(5)), None);
    }
}
