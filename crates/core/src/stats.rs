//! Execution statistics.
//!
//! Every query execution reports, per synchronization round: site busy
//! times, coordinator time, and rows/bytes shipped each way — the raw
//! series behind each figure of the paper. [`ExecStats::simulated`]
//! combines measured compute with the [`CostModel`]'s wire time into the
//! site/coordinator/communication breakdown of Figure 5 (right).

use skalla_net::{CostModel, RoundStats};
use skalla_relation::Relation;

/// Per-round measurements taken by the coordinator.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    /// Stage label (matches the plan's stage label).
    pub label: String,
    /// Busy seconds per site (only sites that participated are non-zero).
    pub site_busy_s: Vec<f64>,
    /// Coordinator compute seconds (fragment building + synchronization).
    pub coord_s: f64,
    /// Base-structure rows shipped coordinator → sites (total).
    pub rows_down: u64,
    /// Result rows shipped sites → coordinator (total).
    pub rows_up: u64,
}

/// The simulated breakdown of a query's evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBreakdown {
    /// Site computation (per round, the slowest participating site).
    pub site_s: f64,
    /// Coordinator computation.
    pub coord_s: f64,
    /// Communication (from the cost model over recorded traffic).
    pub comm_s: f64,
}

impl SimBreakdown {
    /// Total simulated evaluation time.
    pub fn total_s(&self) -> f64 {
        self.site_s + self.coord_s + self.comm_s
    }
}

/// Statistics for one distributed query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Per-round compute measurements.
    pub stages: Vec<StageTimes>,
    /// Per-round traffic (parallel to `stages`).
    pub net: Vec<RoundStats>,
    /// Real wall-clock seconds for the whole execution.
    pub wall_s: f64,
}

impl ExecStats {
    /// Total bytes transferred in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.net.iter().map(|r| r.totals().total_bytes()).sum()
    }

    /// Bytes shipped coordinator → sites.
    pub fn bytes_down(&self) -> u64 {
        self.net.iter().map(|r| r.totals().down_bytes).sum()
    }

    /// Bytes shipped sites → coordinator.
    pub fn bytes_up(&self) -> u64 {
        self.net.iter().map(|r| r.totals().up_bytes).sum()
    }

    /// Total messages both ways.
    pub fn total_messages(&self) -> u64 {
        self.net
            .iter()
            .map(|r| {
                let t = r.totals();
                t.down_msgs + t.up_msgs
            })
            .sum()
    }

    /// Rows shipped down / up over all rounds.
    pub fn total_rows(&self) -> (u64, u64) {
        let down = self.stages.iter().map(|s| s.rows_down).sum();
        let up = self.stages.iter().map(|s| s.rows_up).sum();
        (down, up)
    }

    /// Number of synchronization rounds (the plan-distribution round is
    /// bookkeeping, not a synchronization, and is excluded).
    pub fn n_rounds(&self) -> usize {
        self.stages.iter().filter(|s| s.label != "plan").count()
    }

    /// Simulated evaluation-time breakdown under a cost model. Site time
    /// counts the slowest site per round (sites run in parallel; the
    /// coordinator barriers each round).
    pub fn simulated(&self, cost: &CostModel) -> SimBreakdown {
        let site_s = self
            .stages
            .iter()
            .map(|s| s.site_busy_s.iter().cloned().fold(0.0, f64::max))
            .sum();
        let coord_s = self.stages.iter().map(|s| s.coord_s).sum();
        let comm_s = self.net.iter().map(|r| cost.round_time_s(r)).sum();
        SimBreakdown {
            site_s,
            coord_s,
            comm_s,
        }
    }
}

/// The outcome of a distributed query: the result relation plus the
/// execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query answer.
    pub relation: Relation,
    /// Measurements.
    pub stats: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_net::LinkStats;

    fn round(label: &str, down: u64, up: u64) -> RoundStats {
        RoundStats {
            label: label.into(),
            per_site: vec![LinkStats {
                down_bytes: down,
                up_bytes: up,
                down_msgs: (down > 0) as u64,
                up_msgs: (up > 0) as u64,
            }],
        }
    }

    fn stats() -> ExecStats {
        ExecStats {
            stages: vec![
                StageTimes {
                    label: "base".into(),
                    site_busy_s: vec![0.1, 0.3],
                    coord_s: 0.05,
                    rows_down: 0,
                    rows_up: 100,
                },
                StageTimes {
                    label: "gmdj 1".into(),
                    site_busy_s: vec![0.2, 0.1],
                    coord_s: 0.05,
                    rows_down: 200,
                    rows_up: 100,
                },
            ],
            net: vec![round("base", 0, 1000), round("gmdj 1", 2000, 1000)],
            wall_s: 1.0,
        }
    }

    #[test]
    fn byte_and_row_totals() {
        let s = stats();
        assert_eq!(s.total_bytes(), 4000);
        assert_eq!(s.bytes_down(), 2000);
        assert_eq!(s.bytes_up(), 2000);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_rows(), (200, 200));
        assert_eq!(s.n_rounds(), 2);
    }

    #[test]
    fn simulated_breakdown_takes_max_site_per_round() {
        let s = stats();
        let model = CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1000.0,
        };
        let sim = s.simulated(&model);
        assert!((sim.site_s - 0.5).abs() < 1e-12); // 0.3 + 0.2
        assert!((sim.coord_s - 0.1).abs() < 1e-12);
        assert!((sim.comm_s - 4.0).abs() < 1e-12);
        assert!((sim.total_s() - 4.6).abs() < 1e-12);
    }
}
