//! Execution statistics.
//!
//! Every query execution reports, per synchronization round: site busy
//! times, coordinator time, and rows/bytes shipped each way — the raw
//! series behind each figure of the paper. [`ExecStats::simulated`]
//! combines measured compute with the [`CostModel`]'s wire time into the
//! site/coordinator/communication breakdown of Figure 5 (right).

use skalla_net::{CostModel, RoundStats};
use skalla_relation::Relation;

/// Per-round measurements taken by the coordinator.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    /// Stage label (matches the plan's stage label).
    pub label: String,
    /// Busy seconds per site (only sites that participated are non-zero).
    pub site_busy_s: Vec<f64>,
    /// Coordinator compute seconds (fragment building + synchronization).
    pub coord_s: f64,
    /// Base-structure rows shipped coordinator → sites (total).
    pub rows_down: u64,
    /// Result rows shipped sites → coordinator (total).
    pub rows_up: u64,
}

/// The simulated breakdown of a query's evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBreakdown {
    /// Site computation (per round, the slowest participating site).
    pub site_s: f64,
    /// Coordinator computation.
    pub coord_s: f64,
    /// Communication (from the cost model over recorded traffic).
    pub comm_s: f64,
}

impl SimBreakdown {
    /// Total simulated evaluation time.
    pub fn total_s(&self) -> f64 {
        self.site_s + self.coord_s + self.comm_s
    }
}

/// Statistics for one distributed query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Per-round compute measurements.
    pub stages: Vec<StageTimes>,
    /// Per-round traffic (parallel to `stages`).
    pub net: Vec<RoundStats>,
    /// Real wall-clock seconds for the whole execution.
    pub wall_s: f64,
}

impl ExecStats {
    /// Total bytes transferred in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.net.iter().map(|r| r.totals().total_bytes()).sum()
    }

    /// Bytes shipped coordinator → sites.
    pub fn bytes_down(&self) -> u64 {
        self.net.iter().map(|r| r.totals().down_bytes).sum()
    }

    /// Bytes shipped sites → coordinator.
    pub fn bytes_up(&self) -> u64 {
        self.net.iter().map(|r| r.totals().up_bytes).sum()
    }

    /// Total messages both ways.
    pub fn total_messages(&self) -> u64 {
        self.net
            .iter()
            .map(|r| {
                let t = r.totals();
                t.down_msgs + t.up_msgs
            })
            .sum()
    }

    /// Rows shipped down / up over all rounds.
    pub fn total_rows(&self) -> (u64, u64) {
        let down = self.stages.iter().map(|s| s.rows_down).sum();
        let up = self.stages.iter().map(|s| s.rows_up).sum();
        (down, up)
    }

    /// Number of synchronization rounds (the plan-distribution round is
    /// bookkeeping, not a synchronization, and is excluded).
    pub fn n_rounds(&self) -> usize {
        self.stages.iter().filter(|s| s.label != "plan").count()
    }

    /// Stats for a query served entirely from the semantic cache (a
    /// full-result hit or a coalesced in-flight result): one marker
    /// round labeled `"cache"`, zero traffic.
    pub fn cache_hit(n_sites: usize, wall_s: f64) -> ExecStats {
        ExecStats {
            stages: vec![StageTimes {
                label: "cache".to_string(),
                site_busy_s: vec![0.0; n_sites],
                ..StageTimes::default()
            }],
            net: Vec::new(),
            wall_s,
        }
    }

    /// Whether these stats describe a query answered without contacting
    /// sites (see [`ExecStats::cache_hit`]).
    pub fn is_cache_hit(&self) -> bool {
        self.net.is_empty() && self.stages.iter().any(|s| s.label == "cache")
    }

    /// Simulated evaluation-time breakdown under a cost model. Site time
    /// counts the slowest site per round (sites run in parallel; the
    /// coordinator barriers each round).
    pub fn simulated(&self, cost: &CostModel) -> SimBreakdown {
        let site_s = self
            .stages
            .iter()
            .map(|s| s.site_busy_s.iter().cloned().fold(0.0, f64::max))
            .sum();
        let coord_s = self.stages.iter().map(|s| s.coord_s).sum();
        let comm_s = self.net.iter().map(|r| cost.round_time_s(r)).sum();
        SimBreakdown {
            site_s,
            coord_s,
            comm_s,
        }
    }
}

/// One row of the per-round timeline table: compute and traffic for a
/// single round, with the busy-time skew across participating sites.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSummary {
    /// Stage label.
    pub label: String,
    /// Busy seconds of the slowest participating site.
    pub slowest_site_s: f64,
    /// Mean busy seconds over participating sites (busy > 0).
    pub mean_site_s: f64,
    /// Skew ratio: slowest / mean (1.0 when no site worked).
    pub skew: f64,
    /// Coordinator compute seconds.
    pub coord_s: f64,
    /// Rows shipped coordinator → sites.
    pub rows_down: u64,
    /// Rows shipped sites → coordinator.
    pub rows_up: u64,
    /// Bytes coordinator → sites (payload + framing).
    pub bytes_down: u64,
    /// Bytes sites → coordinator.
    pub bytes_up: u64,
    /// Messages both ways.
    pub msgs: u64,
}

impl ExecStats {
    /// Per-round summaries, zipping compute measurements with traffic.
    pub fn round_summaries(&self) -> Vec<RoundSummary> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let busy: Vec<f64> = st
                    .site_busy_s
                    .iter()
                    .copied()
                    .filter(|s| *s > 0.0)
                    .collect();
                let slowest = busy.iter().copied().fold(0.0, f64::max);
                let mean = if busy.is_empty() {
                    0.0
                } else {
                    busy.iter().sum::<f64>() / busy.len() as f64
                };
                let skew = if mean > 0.0 { slowest / mean } else { 1.0 };
                let (bytes_down, bytes_up, msgs) = match self.net.get(i) {
                    Some(r) => {
                        let t = r.totals();
                        (t.down_bytes, t.up_bytes, t.down_msgs + t.up_msgs)
                    }
                    None => (0, 0, 0),
                };
                RoundSummary {
                    label: st.label.clone(),
                    slowest_site_s: slowest,
                    mean_site_s: mean,
                    skew,
                    coord_s: st.coord_s,
                    rows_down: st.rows_down,
                    rows_up: st.rows_up,
                    bytes_down,
                    bytes_up,
                    msgs,
                }
            })
            .collect()
    }

    /// The machine-readable form of these statistics: per-round
    /// breakdown plus totals, as one JSON object. This is the body of a
    /// slow-query log line and of the telemetry a CLI run exposes.
    pub fn to_json(&self) -> skalla_obs::json::Json {
        use skalla_obs::json::Json;
        let rounds = Json::Arr(
            self.round_summaries()
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("label", Json::Str(r.label.clone())),
                        ("busy_max_s", Json::Float(r.slowest_site_s)),
                        ("busy_mean_s", Json::Float(r.mean_site_s)),
                        ("skew", Json::Float(r.skew)),
                        ("coord_s", Json::Float(r.coord_s)),
                        ("rows_down", Json::UInt(r.rows_down)),
                        ("rows_up", Json::UInt(r.rows_up)),
                        ("bytes_down", Json::UInt(r.bytes_down)),
                        ("bytes_up", Json::UInt(r.bytes_up)),
                        ("msgs", Json::UInt(r.msgs)),
                    ])
                })
                .collect(),
        );
        let (rows_down, rows_up) = self.total_rows();
        Json::obj(vec![
            ("wall_s", Json::Float(self.wall_s)),
            ("n_rounds", Json::UInt(self.n_rounds() as u64)),
            ("bytes_down", Json::UInt(self.bytes_down())),
            ("bytes_up", Json::UInt(self.bytes_up())),
            ("messages", Json::UInt(self.total_messages())),
            ("rows_down", Json::UInt(rows_down)),
            ("rows_up", Json::UInt(rows_up)),
            ("rounds", rounds),
        ])
    }

    /// Render the per-round timeline as a fixed-width text table (the
    /// `EXPLAIN ANALYZE` output).
    pub fn round_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<5} {:<24} {:>9} {:>10} {:>5} {:>8} {:>9} {:>8} {:>10} {:>9} {:>5}\n",
            "round",
            "stage",
            "busy max",
            "busy mean",
            "skew",
            "coord s",
            "rows down",
            "rows up",
            "bytes down",
            "bytes up",
            "msgs"
        ));
        for (i, r) in self.round_summaries().iter().enumerate() {
            out.push_str(&format!(
                "{:<5} {:<24} {:>9.4} {:>10.4} {:>5.2} {:>8.4} {:>9} {:>8} {:>10} {:>9} {:>5}\n",
                i,
                r.label,
                r.slowest_site_s,
                r.mean_site_s,
                r.skew,
                r.coord_s,
                r.rows_down,
                r.rows_up,
                r.bytes_down,
                r.bytes_up,
                r.msgs
            ));
        }
        out
    }
}

/// The outcome of a distributed query: the result relation plus the
/// execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query answer.
    pub relation: Relation,
    /// Measurements.
    pub stats: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_net::LinkStats;

    fn round(label: &str, down: u64, up: u64) -> RoundStats {
        RoundStats {
            label: label.into(),
            per_site: vec![LinkStats {
                down_bytes: down,
                up_bytes: up,
                down_msgs: (down > 0) as u64,
                up_msgs: (up > 0) as u64,
            }],
        }
    }

    fn stats() -> ExecStats {
        ExecStats {
            stages: vec![
                StageTimes {
                    label: "base".into(),
                    site_busy_s: vec![0.1, 0.3],
                    coord_s: 0.05,
                    rows_down: 0,
                    rows_up: 100,
                },
                StageTimes {
                    label: "gmdj 1".into(),
                    site_busy_s: vec![0.2, 0.1],
                    coord_s: 0.05,
                    rows_down: 200,
                    rows_up: 100,
                },
            ],
            net: vec![round("base", 0, 1000), round("gmdj 1", 2000, 1000)],
            wall_s: 1.0,
        }
    }

    #[test]
    fn byte_and_row_totals() {
        let s = stats();
        assert_eq!(s.total_bytes(), 4000);
        assert_eq!(s.bytes_down(), 2000);
        assert_eq!(s.bytes_up(), 2000);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_rows(), (200, 200));
        assert_eq!(s.n_rounds(), 2);
    }

    #[test]
    fn round_summaries_zip_compute_and_traffic() {
        let s = stats();
        let rows = s.round_summaries();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "base");
        assert!((rows[0].slowest_site_s - 0.3).abs() < 1e-12);
        assert!((rows[0].mean_site_s - 0.2).abs() < 1e-12);
        assert!((rows[0].skew - 1.5).abs() < 1e-12);
        assert_eq!(rows[0].bytes_up, 1000);
        assert_eq!(rows[0].bytes_down, 0);
        assert_eq!(rows[1].rows_down, 200);
        assert_eq!(rows[1].msgs, 2);
    }

    #[test]
    fn skew_is_one_when_no_site_worked() {
        let s = ExecStats {
            stages: vec![StageTimes {
                label: "plan".into(),
                site_busy_s: vec![0.0, 0.0],
                ..StageTimes::default()
            }],
            net: vec![round("plan", 100, 0)],
            wall_s: 0.0,
        };
        let rows = s.round_summaries();
        assert_eq!(rows[0].skew, 1.0);
        assert_eq!(rows[0].slowest_site_s, 0.0);
    }

    #[test]
    fn round_table_renders_every_round() {
        let s = stats();
        let table = s.round_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rounds
        assert!(lines[0].contains("busy max"));
        assert!(lines[1].contains("base"));
        assert!(lines[2].contains("gmdj 1"));
    }

    #[test]
    fn to_json_round_trips_through_the_obs_parser() {
        let s = stats();
        let text = s.to_json().to_json();
        let back = skalla_obs::json::parse(&text).unwrap();
        assert_eq!(back.get("n_rounds").and_then(|j| j.as_u64()), Some(2));
        assert_eq!(back.get("bytes_down").and_then(|j| j.as_u64()), Some(2000));
        assert_eq!(back.get("messages").and_then(|j| j.as_u64()), Some(3));
        let rounds = back.get("rounds").and_then(|j| j.as_arr()).unwrap();
        assert_eq!(rounds.len(), 2);
        assert_eq!(
            rounds[0].get("label").and_then(|j| j.as_str()),
            Some("base")
        );
        assert_eq!(
            rounds[0].get("busy_max_s").and_then(|j| j.as_f64()),
            Some(0.3)
        );
        assert_eq!(rounds[1].get("rows_down").and_then(|j| j.as_u64()), Some(200));
    }

    #[test]
    fn simulated_breakdown_takes_max_site_per_round() {
        let s = stats();
        let model = CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1000.0,
        };
        let sim = s.simulated(&model);
        assert!((sim.site_s - 0.5).abs() < 1e-12); // 0.3 + 0.2
        assert!((sim.coord_s - 0.1).abs() < 1e-12);
        assert!((sim.comm_s - 4.0).abs() < 1e-12);
        assert!((sim.total_s() - 4.6).abs() < 1e-12);
    }
}
