//! The unified `Warehouse` API and the concurrent multi-query engine.
//!
//! Skalla grew three execution front-ends — the in-process
//! [`Cluster`], the multi-process [`RemoteCluster`], and (here) the
//! concurrent [`Skalla`] engine. The [`Warehouse`] trait is the one
//! interface they all share: learn the distribution, validate against
//! the catalog, execute a plan, get a [`QueryResult`] with identical
//! statistics whichever runtime carried the bytes. Embedders hold a
//! `Box<dyn Warehouse>` and stop caring which transport is underneath.
//!
//! [`Skalla`] is the tentpole: a multi-query engine over **persistent
//! per-site connections**. Where the serial front-ends run one query
//! per session (the releasing shutdown broadcast ends the session),
//! the engine keeps the site links open and multiplexes concurrent
//! queries onto them:
//!
//! * admission control ([`crate::scheduler::QueryScheduler`]) bounds
//!   how many queries run and wait at once;
//! * each admitted query gets a fresh [`skalla_net::Message::query_id`]
//!   and a dedicated [`skalla_net::MuxHandle`] view of the shared
//!   links, so frames of interleaved queries route to the right
//!   per-query state on both ends (site side:
//!   [`crate::site::site_session_loop`]);
//! * per-query [`crate::stats::ExecStats`] — round labels, byte and
//!   message counts, site busy times — are **exactly** what a serial
//!   run of the same plan records, because the same crate-private
//!   `run_coordinator` drives every path and each query's accounting
//!   lives on its own [`skalla_net::NetStats`].
//!
//! Build one with [`Skalla::builder`]:
//!
//! ```
//! use skalla_core::warehouse::{Skalla, Warehouse};
//! use skalla_core::plan::{OptFlags, Planner};
//! use skalla_gmdj::prelude::*;
//! use skalla_relation::{row, DataType, Domain, DomainMap, Relation, Schema};
//!
//! let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
//! let p0 = Relation::new(schema.clone(), vec![row![1i64, 10i64]]).unwrap();
//! let p1 = Relation::new(schema, vec![row![2i64, 5i64]]).unwrap();
//! let engine = Skalla::builder()
//!     .partitions("t", vec![
//!         (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
//!         (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
//!     ])
//!     .max_concurrent(2)
//!     .build()
//!     .unwrap();
//! let expr = GmdjExprBuilder::distinct_base("t", &["g"])
//!     .gmdj(Gmdj::new("t").block(
//!         ThetaBuilder::group_by(&["g"]).build(),
//!         vec![AggSpec::count("cnt")],
//!     ))
//!     .build();
//! let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());
//! let out = engine.execute(&plan).unwrap();
//! assert_eq!(out.relation.len(), 2);
//! ```

use crate::cache::{plan_fingerprints, Fingerprint, Role, SemanticCache, DEFAULT_CACHE_BYTES};
use crate::cluster::{finished_rounds, net_err, run_coordinator, Cluster};
use crate::distribution::DistributionInfo;
use crate::plan::DistributedPlan;
use crate::protocol;
use crate::remote::{catalog_handshake, RemoteCluster};
use crate::scheduler::{QueryScheduler, SchedulerConfig};
use crate::site::site_session_loop;
use crate::stats::{ExecStats, QueryResult, StageTimes};
use skalla_gmdj::eval::EvalOptions;
use skalla_net::{star, CoordinatorTransport, MuxHandle, QueryMux, TcpConfig, TcpCoordinator};
use skalla_obs::{estimate_offset_us, Obs, Track};
use skalla_relation::{DomainMap, Error, Relation, Result, Schema};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The plan-validation catalog as every runtime shares it: an
/// `Arc`-shared table map plus the partition epoch it was observed at.
/// Handing out the `Arc` (instead of cloning a `HashMap` per call, as
/// the `Warehouse` trait originally did) makes `catalog()` O(1), and
/// carrying the epoch lets callers correlate the snapshot with the
/// semantic cache's invalidation state.
///
/// Derefs to the table map, so existing `catalog().get(..)` /
/// `catalog().contains_key(..)` call sites keep working unchanged.
#[derive(Debug, Clone)]
pub struct SharedCatalog {
    tables: Arc<HashMap<String, Arc<Relation>>>,
    epoch: u64,
}

impl SharedCatalog {
    /// Wrap a shared table map observed at `epoch`.
    pub fn new(tables: Arc<HashMap<String, Arc<Relation>>>, epoch: u64) -> SharedCatalog {
        SharedCatalog { tables, epoch }
    }

    /// The shared table map.
    pub fn tables(&self) -> &Arc<HashMap<String, Arc<Relation>>> {
        &self.tables
    }

    /// The partition epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Deref for SharedCatalog {
    type Target = HashMap<String, Arc<Relation>>;

    fn deref(&self) -> &HashMap<String, Arc<Relation>> {
        &self.tables
    }
}

/// The one interface every Skalla runtime exposes: what an embedder
/// needs to plan and execute distributed OLAP queries without caring
/// whether the sites are threads, processes, or a shared persistent
/// session. All three runtimes — [`Cluster`], [`RemoteCluster`], and
/// the concurrent [`Skalla`] engine — implement it, and all three
/// return byte-identical results and identical logical traffic
/// accounting for the same plan, by construction (they share the
/// crate-private coordinator driver).
pub trait Warehouse: Send + Sync {
    /// Number of warehouse sites.
    fn n_sites(&self) -> usize;

    /// The coordinator's distribution knowledge (feed this to
    /// [`crate::plan::Planner::new`]).
    fn distribution(&self) -> DistributionInfo;

    /// The plan-validation catalog: every table's schema, as (possibly
    /// empty) relations, `Arc`-shared and stamped with the partition
    /// epoch it was observed at (no per-call map clone).
    fn catalog(&self) -> SharedCatalog;

    /// The semantic result cache, when this runtime has one. Only the
    /// concurrent [`Skalla`] engine caches (the serial runtimes run one
    /// query per session); callers such as the cube lattice use this to
    /// tally roll-up reuse without downcasting.
    fn semantic_cache(&self) -> Option<&SemanticCache> {
        None
    }

    /// Execute a distributed plan and return the result with full
    /// per-round statistics.
    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult>;
}

impl Warehouse for Cluster {
    fn n_sites(&self) -> usize {
        Cluster::n_sites(self)
    }

    fn distribution(&self) -> DistributionInfo {
        Cluster::distribution(self)
    }

    fn catalog(&self) -> SharedCatalog {
        SharedCatalog::new(self.site_catalog_shared(0), self.partition_epoch())
    }

    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        Cluster::execute(self, plan)
    }
}

impl Warehouse for RemoteCluster {
    fn n_sites(&self) -> usize {
        RemoteCluster::n_sites(self)
    }

    fn distribution(&self) -> DistributionInfo {
        RemoteCluster::distribution(self)
    }

    fn catalog(&self) -> SharedCatalog {
        // A remote session's catalog is fixed by the handshake; it has
        // no mutation surface, so its epoch is constant.
        SharedCatalog::new(self.catalog_shared(), 0)
    }

    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        RemoteCluster::execute(self, plan)
    }
}

/// Everything an engine needs to know beyond where the data lives: the
/// per-site kernel options, coordinator timeouts, row blocking,
/// observability, the admission-control discipline, and the semantic
/// cache budget. One struct replaces the per-runtime setter chains the
/// serial runtimes used to carry (`set_eval_options` and friends,
/// removed); the serial runtimes adopt the relevant subset through
/// [`Cluster::configure`] / [`RemoteCluster::configure`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Local evaluation options shipped to every site with the plan.
    pub eval: EvalOptions,
    /// Per-round coordinator receive timeout.
    pub timeout: Duration,
    /// Row blocking: sites ship sub-results in chunks of this many rows
    /// (`None` ships one message per stage).
    pub chunk_rows: Option<usize>,
    /// Observability handle; disabled by default.
    pub obs: Obs,
    /// Multi-query admission control (concurrency, queue bound, queue
    /// timeout).
    pub scheduler: SchedulerConfig,
    /// Byte budget for the semantic result cache (least-recently-used
    /// entries are evicted past it). Defaults to 64 MiB, overridable
    /// with `SKALLA_CACHE_BYTES`; whether the cache is consulted at all
    /// is the [`EvalOptions::cache`] knob.
    pub cache_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            eval: EvalOptions::default(),
            timeout: Duration::from_secs(120),
            chunk_rows: None,
            obs: Obs::disabled(),
            scheduler: SchedulerConfig::default(),
            cache_bytes: std::env::var("SKALLA_CACHE_BYTES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_CACHE_BYTES),
        }
    }
}

/// Where the engine's sites live.
enum BackendSpec {
    /// Not yet chosen — [`SkallaBuilder::build`] rejects this.
    Unset,
    /// In-process: one thread per site over the channel transport. The
    /// `Cluster` is only the table-assembly vehicle; execution goes
    /// through persistent [`site_session_loop`] threads.
    Local(Cluster),
    /// Multi-process: dial `skalla-cli site` processes over TCP.
    Remote {
        addrs: Vec<String>,
        tcp: TcpConfig,
    },
}

/// Builder for the concurrent [`Skalla`] engine: pick a backend
/// ([`SkallaBuilder::partitions`] or [`SkallaBuilder::remote`]), tune
/// the [`EngineConfig`], then [`SkallaBuilder::build`].
pub struct SkallaBuilder {
    cfg: EngineConfig,
    backend: BackendSpec,
}

impl SkallaBuilder {
    /// Register a partitioned fact relation for the in-process backend:
    /// one `(fragment, φ-domains)` pair per site, in site order. The
    /// first call fixes the site count; later calls add more tables
    /// (see [`Cluster::add_table`] for the invariants).
    ///
    /// # Panics
    /// Panics if called after [`SkallaBuilder::remote`], or if the
    /// fragment count differs between tables.
    pub fn partitions<P: Into<(Relation, DomainMap)>>(
        mut self,
        table: impl Into<String>,
        parts: Vec<P>,
    ) -> SkallaBuilder {
        match &mut self.backend {
            BackendSpec::Local(cluster) => {
                cluster.add_table(table, parts);
            }
            BackendSpec::Unset => {
                self.backend = BackendSpec::Local(Cluster::from_partitions(table, parts));
            }
            BackendSpec::Remote { .. } => {
                panic!("SkallaBuilder: cannot mix partitions() with remote()");
            }
        }
        self
    }

    /// Use the multi-process TCP backend: dial one site process per
    /// address (with the config's retry/backoff) at build time and keep
    /// the connections open for the engine's lifetime. Replaces any
    /// previously configured backend.
    pub fn remote(mut self, addrs: &[String], tcp: TcpConfig) -> SkallaBuilder {
        self.backend = BackendSpec::Remote {
            addrs: addrs.to_vec(),
            tcp,
        };
        self
    }

    /// Replace the whole [`EngineConfig`] at once.
    pub fn config(mut self, cfg: EngineConfig) -> SkallaBuilder {
        self.cfg = cfg;
        self
    }

    /// Local evaluation options used at every site.
    pub fn eval_options(mut self, eval: EvalOptions) -> SkallaBuilder {
        self.cfg.eval = eval;
        self
    }

    /// Per-round coordinator receive timeout.
    pub fn timeout(mut self, timeout: Duration) -> SkallaBuilder {
        self.cfg.timeout = timeout;
        self
    }

    /// Row blocking chunk size (`None` ships one message per stage).
    pub fn chunk_rows(mut self, rows: Option<usize>) -> SkallaBuilder {
        self.cfg.chunk_rows = rows.filter(|r| *r > 0);
        self
    }

    /// Attach an observability handle: per-query spans land on
    /// [`Track::Query`] / [`Track::SiteQuery`] timelines with a
    /// `query_id` attribute.
    pub fn obs(mut self, obs: Obs) -> SkallaBuilder {
        self.cfg.obs = obs;
        self
    }

    /// How many queries may execute concurrently.
    pub fn max_concurrent(mut self, n: usize) -> SkallaBuilder {
        self.cfg.scheduler.max_concurrent = n;
        self
    }

    /// How many queries may wait for an execution slot before new
    /// arrivals are rejected.
    pub fn queue_capacity(mut self, n: usize) -> SkallaBuilder {
        self.cfg.scheduler.queue_capacity = n;
        self
    }

    /// How long a queued query waits for a slot before giving up.
    pub fn queue_timeout(mut self, timeout: Duration) -> SkallaBuilder {
        self.cfg.scheduler.queue_timeout = timeout;
        self
    }

    /// Byte budget for the semantic result cache (see
    /// [`EngineConfig::cache_bytes`]).
    pub fn cache_bytes(mut self, bytes: usize) -> SkallaBuilder {
        self.cfg.cache_bytes = bytes;
        self
    }

    /// Stand the engine up: spawn the site threads (local) or dial the
    /// sites and run the versioned catalog handshake (remote), start
    /// the query multiplexer, and return the ready engine.
    pub fn build(self) -> Result<Skalla> {
        let scheduler = QueryScheduler::new(self.cfg.scheduler.clone());
        match self.backend {
            BackendSpec::Unset => Err(Error::Execution(
                "SkallaBuilder: no warehouse backend configured \
                 (call partitions() or remote())"
                    .into(),
            )),
            BackendSpec::Local(cluster) => {
                let n = cluster.n_sites();
                let (coord, site_nets) = star(n);
                let mut site_threads = Vec::with_capacity(n);
                for site_net in site_nets {
                    let catalog = cluster.site_catalog_shared(site_net.site_id());
                    let obs = self.cfg.obs.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("skalla-site-{}", site_net.site_id()))
                        .spawn(move || {
                            // In-process sites share the coordinator's
                            // recorder, so they must not export obs
                            // deltas (importing them would duplicate
                            // every span); busy samples still travel in
                            // the telemetry replies.
                            site_session_loop(&catalog, Arc::new(site_net), false, &obs)
                        })
                        .map_err(|e| Error::Execution(format!("spawning site thread: {e}")))?;
                    site_threads.push(handle);
                }
                Ok(Skalla {
                    dist: cluster.distribution(),
                    catalog: cluster.site_catalog_shared(0),
                    cache: SemanticCache::new(self.cfg.cache_bytes),
                    mux: QueryMux::new(Arc::new(coord)),
                    scheduler,
                    cfg: self.cfg,
                    backend: Backend::Local { site_threads },
                })
            }
            BackendSpec::Remote { addrs, tcp } => {
                if addrs.is_empty() {
                    return Err(Error::Execution("a cluster needs at least one site".into()));
                }
                let coord = TcpCoordinator::connect(&addrs, &tcp).map_err(net_err)?;
                // The handshake rides the shared connection (query id 0)
                // and is charged to the shared transport's pre-query
                // round, never to any query's stats.
                let (dist, catalog, _rows) = catalog_handshake(&coord)?;
                Ok(Skalla {
                    dist,
                    catalog: Arc::new(catalog),
                    cache: SemanticCache::new(self.cfg.cache_bytes),
                    mux: QueryMux::new(Arc::new(coord)),
                    scheduler,
                    cfg: self.cfg,
                    backend: Backend::Remote,
                })
            }
        }
    }
}

/// Runtime state the engine keeps per backend.
enum Backend {
    Local {
        site_threads: Vec<JoinHandle<()>>,
    },
    Remote,
}

/// How long the coordinator waits for the sites' telemetry replies
/// after releasing a query (capped further by the engine timeout). The
/// replies are sent as soon as each site joins the query's worker, so
/// on the success path this wait is microseconds; the cap only matters
/// when a query aborted while a site was mid-stage.
const TELEMETRY_TIMEOUT: Duration = Duration::from_secs(10);

/// The concurrent multi-query engine: persistent per-site connections,
/// a query multiplexer, and admission control in front.
///
/// [`Skalla::execute`] is safe to call from many threads at once — that
/// is the point. Each call is admitted by the scheduler (possibly
/// waiting for a slot), assigned a query id, and driven by the same
/// coordinator algorithm as the serial runtimes over its own
/// multiplexed transport view. Dropping the engine releases the sites
/// (shutdown broadcast on the shared connection) and joins the
/// machinery.
///
/// Construct with [`Skalla::builder`]; see the module docs for an
/// example.
pub struct Skalla {
    dist: DistributionInfo,
    catalog: Arc<HashMap<String, Arc<Relation>>>,
    cache: SemanticCache,
    mux: QueryMux,
    scheduler: QueryScheduler,
    cfg: EngineConfig,
    backend: Backend,
}

impl std::fmt::Debug for Skalla {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Skalla")
            .field("n_sites", &self.mux.n_sites())
            .field("tables", &self.catalog.keys().collect::<Vec<_>>())
            .field("max_concurrent", &self.scheduler.config().max_concurrent)
            .finish()
    }
}

impl Skalla {
    /// Start configuring an engine.
    pub fn builder() -> SkallaBuilder {
        SkallaBuilder {
            cfg: EngineConfig::default(),
            backend: BackendSpec::Unset,
        }
    }

    /// Number of warehouse sites.
    pub fn n_sites(&self) -> usize {
        self.mux.n_sites()
    }

    /// The coordinator's distribution knowledge (feed this to
    /// [`crate::plan::Planner::new`]).
    pub fn distribution(&self) -> DistributionInfo {
        self.dist.clone()
    }

    /// The plan-validation catalog.
    pub fn catalog(&self) -> &HashMap<String, Arc<Relation>> {
        &self.catalog
    }

    /// The semantic result cache (inspect hit/miss/roll-up counters,
    /// budget, and partition epoch).
    pub fn semantic_cache(&self) -> &SemanticCache {
        &self.cache
    }

    /// Bump the partition epoch after an external catalog or partition
    /// mutation (e.g. a remote site swapped a partition in place): every
    /// cached result and prefix snapshot becomes unreachable at once,
    /// so no later query can be answered from pre-swap data.
    pub fn bump_partition_epoch(&self) -> u64 {
        self.cache.bump_epoch()
    }

    /// The admission controller (inspect running/waiting counts).
    pub fn scheduler(&self) -> &QueryScheduler {
        &self.scheduler
    }

    /// The engine configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Execute a distributed plan as one admitted query. Blocks while
    /// the admission queue holds it; fails fast with a clean error when
    /// the queue is full or the queue timeout expires. Statistics are
    /// per-query: round labels and byte/message counts are identical to
    /// a serial run of the same plan, and site busy times are reported
    /// by the sites themselves on both backends (shipped in
    /// accounting-exempt telemetry frames, so the byte counts still
    /// match a serial run).
    /// When [`EvalOptions::cache`] is on, execution consults the
    /// semantic cache first: a query whose fingerprint is cached is
    /// answered without contacting sites (its stats show one zero-byte
    /// `"cache"` round, [`ExecStats::is_cache_hit`]); an identical
    /// query already in flight is coalesced onto the leader's result;
    /// and an executing query resumes from its longest cached stage
    /// prefix. All three paths return results bit-identical to a cold
    /// run.
    pub fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        let admitted = self.scheduler.admit();
        self.publish_scheduler_gauges();
        let permit = admitted.map_err(|e| Error::Execution(format!("admission: {e}")))?;
        let result = self.execute_admitted(plan);
        drop(permit);
        self.publish_scheduler_gauges();
        self.publish_cache_gauges();
        if let Ok(out) = &result {
            self.cfg.obs.hist("query.wall_s", out.stats.wall_s);
        }
        result
    }

    /// The cache-routing half of [`Skalla::execute`] (runs holding the
    /// admission permit): full-result hit → coalesce onto an in-flight
    /// leader → execute (resuming from the longest cached prefix).
    fn execute_admitted(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        if !self.cfg.eval.cache || plan.stages.is_empty() {
            let query_id = self.scheduler.next_query_id();
            return self.run_query(plan, query_id, None);
        }
        let wall_start = Instant::now();
        let fps = plan_fingerprints(plan, &self.cfg.eval);
        let full_fp = *fps.last().expect("stages checked non-empty"); // lint: allow(panic) validate() rejects empty-stage plans above
        if let Some(relation) = self.cache.lookup(full_fp) {
            self.cache.tally_hit();
            return Ok(QueryResult {
                relation,
                stats: ExecStats::cache_hit(self.n_sites(), wall_start.elapsed().as_secs_f64()),
            });
        }
        match self.cache.join_or_lead(full_fp) {
            Role::Follower(flight) => {
                // A follower keeps its admission permit while waiting:
                // the leader holds its own, so there is no circular
                // wait, and a released-then-reacquired permit would
                // let admission overshoot while results are pending.
                if let Some(relation) = flight.wait(self.coalesce_timeout(plan)) {
                    self.scheduler.record_coalesced();
                    self.cache.tally_coalesced();
                    return Ok(QueryResult {
                        relation,
                        stats: ExecStats::cache_hit(
                            self.n_sites(),
                            wall_start.elapsed().as_secs_f64(),
                        ),
                    });
                }
                // The leader failed (or the wait timed out): execute
                // directly rather than propagating its error.
                self.cache.tally_miss();
                let query_id = self.scheduler.next_query_id();
                self.run_query(plan, query_id, Some(&fps))
            }
            Role::Leader(token) => {
                // The previous leader may have finished between our
                // lookup miss and the registration — re-check before
                // paying for an execution.
                if let Some(relation) = self.cache.lookup(full_fp) {
                    token.finish(Some(&relation));
                    self.cache.tally_hit();
                    return Ok(QueryResult {
                        relation,
                        stats: ExecStats::cache_hit(
                            self.n_sites(),
                            wall_start.elapsed().as_secs_f64(),
                        ),
                    });
                }
                self.cache.tally_miss();
                let query_id = self.scheduler.next_query_id();
                let result = self.run_query(plan, query_id, Some(&fps));
                token.finish(result.as_ref().ok().map(|out| &out.relation));
                result
            }
        }
    }

    /// How long a coalescing follower waits for its leader: the leader
    /// runs one plan round plus one bounded round per stage, so its
    /// worst case is covered with one extra round of slack.
    fn coalesce_timeout(&self, plan: &DistributedPlan) -> Duration {
        self.cfg
            .timeout
            .saturating_mul(plan.stages.len().saturating_add(2) as u32)
    }

    /// Mirror the scheduler's state into obs counters, so the live
    /// metrics endpoint can expose queue depth, in-flight count, and
    /// lifetime admission totals.
    fn publish_scheduler_gauges(&self) {
        let obs = &self.cfg.obs;
        if !obs.is_recording() {
            return;
        }
        obs.counter("scheduler.running", self.scheduler.running() as f64);
        obs.counter("scheduler.waiting", self.scheduler.waiting() as f64);
        obs.counter(
            "scheduler.admitted_total",
            self.scheduler.admitted_total() as f64,
        );
        obs.counter(
            "scheduler.rejected_total",
            self.scheduler.rejected_total() as f64,
        );
        obs.counter(
            "scheduler.timed_out_total",
            self.scheduler.timed_out_total() as f64,
        );
        obs.counter(
            "scheduler.coalesced_total",
            self.scheduler.coalesced_total() as f64,
        );
    }

    /// Mirror the semantic cache's counters into obs, so the live
    /// metrics endpoint exposes hit rate, roll-up reuse, and occupancy
    /// (`skalla_cache_hits`, `skalla_cache_bytes`, …).
    fn publish_cache_gauges(&self) {
        let obs = &self.cfg.obs;
        if !obs.is_recording() {
            return;
        }
        let s = self.cache.stats();
        obs.counter("cache.hits", s.hits as f64);
        obs.counter("cache.misses", s.misses as f64);
        obs.counter("cache.coalesced", s.coalesced as f64);
        obs.counter("cache.prefix_hits", s.prefix_hits as f64);
        obs.counter("cache.rollups", s.rollups as f64);
        obs.counter("cache.bytes", s.bytes as f64);
        obs.counter("cache.entries", s.entries as f64);
        obs.counter("cache.epoch", s.epoch as f64);
    }

    /// Collect the sites' telemetry replies on a query handle: up to one
    /// [`protocol::TAG_TELEMETRY`] frame per site, each stamped with the
    /// coordinator-side receive timestamp (for clock alignment). Partial
    /// collection is fine — a site that died or is stuck mid-stage just
    /// goes unreported. Stray non-telemetry frames are drained and
    /// dropped (telemetry frames are accounting-exempt, so nothing here
    /// perturbs the per-query byte accounting).
    fn collect_telemetry(
        &self,
        handle: &MuxHandle,
    ) -> Vec<(usize, protocol::SiteTelemetry, u64)> {
        let n = self.n_sites();
        let mut out = Vec::with_capacity(n);
        let deadline = Instant::now() + TELEMETRY_TIMEOUT.min(self.cfg.timeout);
        let mut missing = n;
        while missing > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match handle.recv(remaining) {
                Ok((site, msg)) if msg.tag == protocol::TAG_TELEMETRY => {
                    missing -= 1;
                    let resp_us = self.cfg.obs.recorder().map(|r| r.now_us()).unwrap_or(0);
                    if let Ok(report) = protocol::decode_telemetry(&msg.payload) {
                        out.push((site, report, resp_us));
                    }
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        out
    }

    /// Merge the sites' exported obs deltas into the engine recorder,
    /// aligning each site's monotonic clock with the coordinator's.
    /// `req_us` is the coordinator-clock send time of the request that
    /// solicited the replies; paired with each reply's receive time it
    /// bounds the per-site clock offset (the wall-clock anchor gives the
    /// initial estimate). The link index is authoritative for identity:
    /// whatever the site called itself, its spans land in the
    /// `site-N` process lane of the merged trace.
    fn import_site_obs(&self, telemetry: &[(usize, protocol::SiteTelemetry, u64)], req_us: u64) {
        let Some(rec) = self.cfg.obs.recorder() else {
            return;
        };
        for (site, report, resp_us) in telemetry {
            let Some(delta) = &report.obs else { continue };
            let mut delta = delta.clone();
            delta.process_id = *site as u32 + 2;
            delta.process_name = format!("site-{site}");
            let offset = estimate_offset_us(
                rec.wall_start_unix_us(),
                &delta,
                Some((req_us, *resp_us)),
            );
            rec.import_remote(delta, offset);
        }
    }

    /// Pull every site's current telemetry snapshot — pending busy
    /// samples, plus (standalone sites) the recorder delta since the
    /// last export — without retiring any query. Exported obs deltas
    /// are merged into the engine recorder; the raw per-site reports
    /// are returned. The pull rides an accounting-exempt telemetry
    /// frame on a throwaway query stream, so concurrent queries and
    /// their byte accounting are unaffected.
    pub fn pull_telemetry(&self) -> Vec<(usize, protocol::SiteTelemetry)> {
        let query_id = self.scheduler.next_query_id();
        let handle = self.mux.register(query_id);
        let req_us = self.cfg.obs.recorder().map(|r| r.now_us()).unwrap_or(0);
        if handle.broadcast(&protocol::telemetry_request()).is_err() {
            return Vec::new();
        }
        let telemetry = self.collect_telemetry(&handle);
        self.import_site_obs(&telemetry, req_us);
        telemetry
            .into_iter()
            .map(|(site, report, _)| (site, report))
            .collect()
    }

    /// The executing half of [`Skalla::execute`]: mirrors the serial
    /// [`Cluster::execute`] round-for-round so per-query accounting is
    /// equal by construction — round 0 stays empty (sliced off), the
    /// "plan" round carries the plan broadcast, each stage gets its
    /// round, and the query-done release (zero payload, one framing
    /// charge per site) lands in the last round exactly where the
    /// serial path's shutdown broadcast lands.
    ///
    /// `fps` (the per-prefix fingerprints, when caching) turns on
    /// prefix reuse: execution resumes from the longest cached stage
    /// prefix, and every synchronized snapshot plus the final result is
    /// inserted back — under the epoch captured *before* execution, so
    /// a concurrent partition swap drops the insertions instead of
    /// storing stale entries.
    fn run_query(
        &self,
        plan: &DistributedPlan,
        query_id: u32,
        fps: Option<&[Fingerprint]>,
    ) -> Result<QueryResult> {
        let n = self.n_sites();
        let wall_start = Instant::now();
        plan.check_structure(n)?;
        let schemas = plan.expr.validate(self.catalog.as_ref())?;
        let detail_schemas: HashMap<String, Schema> = self
            .catalog
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect();

        let handle = self.mux.register(query_id);
        handle.stats().set_obs(self.cfg.obs.clone());
        let track = Track::Query(query_id);
        let mut query_span = self
            .cfg
            .obs
            .span(track, "query")
            .with("sites", n)
            .with("rounds", plan.n_rounds())
            .with("query_id", query_id as u64);

        // Prefix reuse: resume from the longest cached snapshot (never
        // the full-plan entry — that's the full-hit path), and capture
        // the epoch every insertion must still match.
        let epoch = self.cache.epoch();
        let resume = fps.and_then(|fps| {
            (0..fps.len().saturating_sub(1))
                .rev()
                .find_map(|j| self.cache.lookup(fps[j]).map(|rel| (j, rel)))
        });
        if resume.is_some() {
            self.cache.tally_prefix_hit();
        }
        let mut snaps: Vec<(usize, Relation)> = Vec::new();

        handle.stats().begin_round("plan");
        let plan_bytes =
            crate::plan_codec::encode_plan_with_options(plan, &self.cfg.eval, self.cfg.chunk_rows);
        let plan_msg = skalla_net::Message::new(protocol::TAG_PLAN, plan_bytes);
        let dispatch = handle.broadcast(&plan_msg).map_err(net_err);

        let run = dispatch.and_then(|()| {
            run_coordinator(
                &handle,
                plan,
                &schemas,
                &detail_schemas,
                &self.cfg.eval,
                self.cfg.timeout,
                &self.cfg.obs,
                track,
                resume,
                fps.is_some().then_some(&mut snaps),
            )
        });

        // Always retire this query's site workers, even on error. Each
        // site answers the release with an accounting-exempt telemetry
        // frame carrying its busy samples (and, for standalone sites,
        // its obs delta); the request/reply timestamps bound the clock
        // alignment for the merged trace.
        let req_us = self.cfg.obs.recorder().map(|r| r.now_us()).unwrap_or(0);
        let _ = handle.broadcast(&protocol::query_done());
        let telemetry = self.collect_telemetry(&handle);
        // Merge obs deltas before the error check so a failed query's
        // site spans still land in the trace.
        self.import_site_obs(&telemetry, req_us);

        let (relation, mut stage_times) = run?;
        if let Some(fps) = fps {
            for (j, rel) in &snaps {
                self.cache.insert_at(fps[*j], epoch, rel);
            }
            if let Some(full_fp) = fps.last() {
                self.cache.insert_at(*full_fp, epoch, &relation);
            }
        }
        stage_times.insert(
            0,
            StageTimes {
                label: "plan".to_string(),
                site_busy_s: vec![0.0; n],
                ..StageTimes::default()
            },
        );
        // Site-reported busy times, identically for both backends: the
        // sites measured these around their own stage execution, so the
        // round table's busy/skew columns reflect true site-side work
        // even across process boundaries.
        for (site, report, _) in &telemetry {
            for (qid, stage, secs) in &report.busy {
                if *qid != query_id {
                    continue;
                }
                if let Some(st) = stage_times.get_mut(*stage as usize + 1) {
                    if let Some(busy) = st.site_busy_s.get_mut(*site) {
                        *busy += *secs;
                    }
                }
            }
        }
        let net = finished_rounds(handle.stats());
        query_span.arg("result_rows", relation.len());
        query_span.finish();
        Ok(QueryResult {
            relation,
            stats: ExecStats {
                stages: stage_times,
                net,
                wall_s: wall_start.elapsed().as_secs_f64(),
            },
        })
    }
}

impl Warehouse for Skalla {
    fn n_sites(&self) -> usize {
        Skalla::n_sites(self)
    }

    fn distribution(&self) -> DistributionInfo {
        Skalla::distribution(self)
    }

    fn catalog(&self) -> SharedCatalog {
        SharedCatalog::new(Arc::clone(&self.catalog), self.cache.epoch())
    }

    fn semantic_cache(&self) -> Option<&SemanticCache> {
        Some(&self.cache)
    }

    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        Skalla::execute(self, plan)
    }
}

impl Drop for Skalla {
    fn drop(&mut self) {
        // Release the sites on the shared control stream (query id 0),
        // then stop the dispatcher and join the local site threads.
        let _ = self.mux.shared_transport().broadcast(&protocol::shutdown());
        self.mux.shutdown();
        if let Backend::Local { site_threads, .. } = &mut self.backend {
            for h in site_threads.drain(..) {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Domain};

    fn parts() -> Vec<(Relation, DomainMap)> {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, 10i64], row![1i64, 30i64], row![2i64, 5i64]],
        )
        .unwrap();
        let p1 = Relation::new(schema, vec![row![3i64, 7i64], row![3i64, 9i64]]).unwrap();
        vec![
            (p0, DomainMap::new().with("g", Domain::IntRange(1, 2))),
            (p1, DomainMap::new().with("g", Domain::IntRange(3, 3))),
        ]
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .gmdj(
                Gmdj::new("t").block(
                    ThetaBuilder::group_by(&["g"])
                        .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                        .build(),
                    vec![AggSpec::count("above")],
                ),
            )
            .build()
    }

    fn engine() -> Skalla {
        Skalla::builder().partitions("t", parts()).build().unwrap()
    }

    /// An engine with the semantic cache pinned off (for tests that
    /// assert repeat executions re-contact the sites) or on (for cache
    /// tests that must hold under a `SKALLA_CACHE=0` tier-1 run).
    fn engine_with_cache(cache: bool) -> Skalla {
        Skalla::builder()
            .partitions("t", parts())
            .eval_options(EvalOptions {
                cache,
                ..EvalOptions::default()
            })
            .build()
            .unwrap()
    }

    /// Canonical row order: site replies arrive in nondeterministic
    /// order (serial paths included), so bit-identity is asserted on
    /// the key-sorted relation.
    fn canonical(rel: &Relation) -> Relation {
        rel.sorted_by(&["g"]).unwrap()
    }

    /// The serial oracle: a plain `Cluster` run of the same plan.
    fn serial(plan: &DistributedPlan) -> QueryResult {
        Cluster::from_partitions("t", parts()).execute(plan).unwrap()
    }

    #[test]
    fn engine_matches_serial_cluster_exactly() {
        let e = engine();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let serial_out = serial(&plan);
        let out = e.execute(&plan).unwrap();
        assert_eq!(
            canonical(&out.relation),
            canonical(&serial_out.relation),
            "bit-identical result"
        );
        assert_eq!(out.stats.net, serial_out.stats.net, "identical traffic");
        assert_eq!(out.stats.stages.len(), serial_out.stats.stages.len());
        for (a, b) in out.stats.stages.iter().zip(&serial_out.stats.stages) {
            assert_eq!(a.label, b.label);
            assert_eq!((a.rows_down, a.rows_up), (b.rows_down, b.rows_up));
        }
    }

    #[test]
    fn sequential_queries_reuse_the_session() {
        // Cache off: this asserts the *session* is reused (identical
        // traffic on a repeat run), which requires re-executing.
        let e = engine_with_cache(false);
        let planner = Planner::new(e.distribution());
        let p1 = planner.optimize(&expr(), OptFlags::none());
        let p2 = planner.optimize(&expr(), OptFlags::all());
        let r1 = e.execute(&p1).unwrap();
        let r2 = e.execute(&p2).unwrap();
        let r3 = e.execute(&p1).unwrap();
        assert!(r1.relation.same_bag(&r2.relation));
        assert_eq!(canonical(&r1.relation), canonical(&r3.relation));
        assert_eq!(r1.stats.net, r3.stats.net, "repeat runs account equally");
    }

    #[test]
    fn concurrent_queries_each_match_serial() {
        // Cache off: two of the plans are identical, and with caching
        // on they would deliberately coalesce instead of re-executing.
        let e = Arc::new(
            Skalla::builder()
                .partitions("t", parts())
                .max_concurrent(4)
                .eval_options(EvalOptions {
                    cache: false,
                    ..EvalOptions::default()
                })
                .build()
                .unwrap(),
        );
        let planner = Planner::new(e.distribution());
        let plans: Vec<DistributedPlan> = vec![
            planner.optimize(&expr(), OptFlags::none()),
            planner.optimize(&expr(), OptFlags::all()),
            planner.optimize(&expr(), OptFlags::group_reduction_only()),
            planner.optimize(&expr(), OptFlags::none()),
        ];
        let serial_outs: Vec<QueryResult> = plans.iter().map(serial).collect();
        let handles: Vec<_> = plans
            .into_iter()
            .map(|p| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || e.execute(&p).unwrap())
            })
            .collect();
        for (h, want) in handles.into_iter().zip(serial_outs) {
            let got = h.join().unwrap();
            assert_eq!(
                canonical(&got.relation),
                canonical(&want.relation),
                "bit-identical result"
            );
            assert_eq!(got.stats.net, want.stats.net, "per-query traffic");
        }
    }

    #[test]
    fn admission_queue_full_is_a_clean_error() {
        // One slot, no waiting room: while a query holds the slot, the
        // next is rejected. We hold the slot via the scheduler directly
        // (execute() would release it too quickly to race against).
        let e = Skalla::builder()
            .partitions("t", parts())
            .max_concurrent(1)
            .queue_capacity(0)
            .build()
            .unwrap();
        let _slot = e.scheduler().admit().unwrap();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let err = e.execute(&plan).unwrap_err();
        assert!(err.to_string().contains("queue full"), "{err}");
    }

    #[test]
    fn admission_queue_timeout_is_a_clean_error() {
        let e = Skalla::builder()
            .partitions("t", parts())
            .max_concurrent(1)
            .queue_capacity(4)
            .queue_timeout(Duration::from_millis(50))
            .build()
            .unwrap();
        let _slot = e.scheduler().admit().unwrap();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let err = e.execute(&plan).unwrap_err();
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn builder_without_backend_is_rejected() {
        let err = Skalla::builder().build().unwrap_err();
        assert!(err.to_string().contains("no warehouse backend"), "{err}");
    }

    #[test]
    fn warehouse_trait_dispatches_over_all_runtimes() {
        let plan_of = |w: &dyn Warehouse| {
            Planner::new(w.distribution()).optimize(&expr(), OptFlags::all())
        };
        let cluster: Box<dyn Warehouse> = Box::new(Cluster::from_partitions("t", parts()));
        let engine: Box<dyn Warehouse> = Box::new(engine());
        let a = cluster.execute(&plan_of(cluster.as_ref())).unwrap();
        let b = engine.execute(&plan_of(engine.as_ref())).unwrap();
        assert_eq!(canonical(&a.relation), canonical(&b.relation));
        assert_eq!(a.stats.net, b.stats.net);
        assert_eq!(cluster.n_sites(), 2);
        assert!(cluster.catalog().contains_key("t"));
    }

    #[test]
    fn repeated_query_is_served_from_cache() {
        let e = engine_with_cache(true);
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let cold = e.execute(&plan).unwrap();
        assert!(!cold.stats.is_cache_hit());
        let warm = e.execute(&plan).unwrap();
        assert!(warm.stats.is_cache_hit(), "second run must hit");
        assert_eq!(warm.stats.total_bytes(), 0, "no site contact");
        assert_eq!(canonical(&warm.relation), canonical(&cold.relation));
        let s = e.semantic_cache().stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn label_and_theta_variants_hit_the_same_entry() {
        // Structural fingerprinting: a re-planned query with renamed
        // stage labels and reordered θ conjuncts is the same query.
        let e = engine_with_cache(true);
        let planner = Planner::new(e.distribution());
        let theta = |flip: bool| {
            let a = Expr::dcol("g").eq(Expr::bcol("g"));
            let b = Expr::dcol("v").ge(Expr::lit(5i64));
            if flip {
                b.and(a)
            } else {
                a.and(b)
            }
        };
        let build = |flip: bool| {
            GmdjExprBuilder::distinct_base("t", &["g"])
                .gmdj(Gmdj::new("t").block(theta(flip), vec![AggSpec::count("cnt")]))
                .build()
        };
        let p1 = planner.optimize(&build(false), OptFlags::none());
        let mut p2 = planner.optimize(&build(true), OptFlags::none());
        for s in &mut p2.stages {
            s.label = format!("renamed {}", s.label);
        }
        let cold = e.execute(&p1).unwrap();
        let warm = e.execute(&p2).unwrap();
        assert!(warm.stats.is_cache_hit(), "θ order / labels are cosmetic");
        assert_eq!(canonical(&warm.relation), canonical(&cold.relation));
    }

    #[test]
    fn longer_chain_resumes_from_cached_prefix() {
        let e = engine_with_cache(true);
        let planner = Planner::new(e.distribution());
        let short = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .build();
        let p_short = planner.optimize(&short, OptFlags::none());
        let p_long = planner.optimize(&expr(), OptFlags::none());
        e.execute(&p_short).unwrap();
        let resumed = e.execute(&p_long).unwrap();
        // The long chain extends the short one, so its base + gmdj 1
        // prefix is answered from the short query's cached result; only
        // the final stage touches the wire.
        let serial_out = serial(&p_long);
        assert_eq!(canonical(&resumed.relation), canonical(&serial_out.relation));
        assert_eq!(e.semantic_cache().stats().prefix_hits, 1);
        assert_eq!(resumed.stats.stages.len(), serial_out.stats.stages.len());
        let bytes: Vec<u64> = resumed
            .stats
            .net
            .iter()
            .map(|r| r.totals().total_bytes())
            .collect();
        // Rounds: plan, base (skipped), gmdj 1 (skipped), gmdj 2.
        assert_eq!(bytes[1], 0, "base round resumed from cache");
        assert_eq!(bytes[2], 0, "gmdj 1 round resumed from cache");
        assert!(bytes[3] > 0, "final stage executed");
    }

    #[test]
    fn concurrent_identical_queries_contact_sites_once() {
        let e = Arc::new(
            Skalla::builder()
                .partitions("t", parts())
                .max_concurrent(4)
                .eval_options(EvalOptions {
                    cache: true,
                    ..EvalOptions::default()
                })
                .build()
                .unwrap(),
        );
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let serial_out = serial(&plan);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let e = Arc::clone(&e);
                let plan = plan.clone();
                std::thread::spawn(move || e.execute(&plan).unwrap())
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(canonical(&got.relation), canonical(&serial_out.relation));
        }
        let s = e.semantic_cache().stats();
        assert_eq!(s.misses, 1, "exactly one execution");
        assert_eq!(s.hits + s.coalesced, 3, "the rest served without sites");
        assert_eq!(e.scheduler().coalesced_total(), s.coalesced);
    }

    #[test]
    fn epoch_bump_after_partition_swap_invalidates_results() {
        let e = engine_with_cache(true);
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let cold = e.execute(&plan).unwrap();
        assert!(e.execute(&plan).unwrap().stats.is_cache_hit());
        let epoch = e.bump_partition_epoch();
        assert_eq!(Warehouse::catalog(&e).epoch(), epoch);
        let reexec = e.execute(&plan).unwrap();
        assert!(
            !reexec.stats.is_cache_hit(),
            "post-swap query must re-execute"
        );
        assert_eq!(reexec.stats.net, cold.stats.net, "full cold traffic");
    }

    #[test]
    fn per_query_obs_spans_carry_query_ids() {
        let obs = Obs::recording();
        let e = Skalla::builder()
            .partitions("t", parts())
            .obs(obs.clone())
            .build()
            .unwrap();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        e.execute(&plan).unwrap();
        drop(e);
        let rec = obs.recorder().unwrap();
        let spans = rec.spans();
        assert!(spans.iter().all(|s| s.dur_us.is_some()), "all spans closed");
        let query = spans
            .iter()
            .find(|s| s.name == "query")
            .expect("query span");
        assert_eq!(query.track, Track::Query(1));
        // Stage spans nest under the query on its own track.
        for label in ["base", "gmdj 1", "gmdj 2"] {
            let st = spans
                .iter()
                .find(|s| s.name == label && s.track == Track::Query(1))
                .unwrap_or_else(|| panic!("missing stage span {label}"));
            assert_eq!(st.parent, Some(query.id));
        }
        // Site-side task spans land on per-query site tracks.
        for site in 0..2 {
            assert_eq!(
                spans
                    .iter()
                    .filter(|s| s.track == Track::SiteQuery(site, 1))
                    .count(),
                3,
                "site {site} task spans"
            );
        }
    }
}
