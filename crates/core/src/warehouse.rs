//! The unified `Warehouse` API and the concurrent multi-query engine.
//!
//! Skalla grew three execution front-ends — the in-process
//! [`Cluster`], the multi-process [`RemoteCluster`], and (here) the
//! concurrent [`Skalla`] engine. The [`Warehouse`] trait is the one
//! interface they all share: learn the distribution, validate against
//! the catalog, execute a plan, get a [`QueryResult`] with identical
//! statistics whichever runtime carried the bytes. Embedders hold a
//! `Box<dyn Warehouse>` and stop caring which transport is underneath.
//!
//! [`Skalla`] is the tentpole: a multi-query engine over **persistent
//! per-site connections**. Where the serial front-ends run one query
//! per session (the releasing shutdown broadcast ends the session),
//! the engine keeps the site links open and multiplexes concurrent
//! queries onto them:
//!
//! * admission control ([`crate::scheduler::QueryScheduler`]) bounds
//!   how many queries run and wait at once;
//! * each admitted query gets a fresh [`skalla_net::Message::query_id`]
//!   and a dedicated [`skalla_net::MuxHandle`] view of the shared
//!   links, so frames of interleaved queries route to the right
//!   per-query state on both ends (site side:
//!   [`crate::site::site_session_loop`]);
//! * per-query [`crate::stats::ExecStats`] — round labels, byte and
//!   message counts, site busy times — are **exactly** what a serial
//!   run of the same plan records, because the same crate-private
//!   `run_coordinator` drives every path and each query's accounting
//!   lives on its own [`skalla_net::NetStats`].
//!
//! Build one with [`Skalla::builder`]:
//!
//! ```
//! use skalla_core::warehouse::{Skalla, Warehouse};
//! use skalla_core::plan::{OptFlags, Planner};
//! use skalla_gmdj::prelude::*;
//! use skalla_relation::{row, DataType, Domain, DomainMap, Relation, Schema};
//!
//! let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
//! let p0 = Relation::new(schema.clone(), vec![row![1i64, 10i64]]).unwrap();
//! let p1 = Relation::new(schema, vec![row![2i64, 5i64]]).unwrap();
//! let engine = Skalla::builder()
//!     .partitions("t", vec![
//!         (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
//!         (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
//!     ])
//!     .max_concurrent(2)
//!     .build()
//!     .unwrap();
//! let expr = GmdjExprBuilder::distinct_base("t", &["g"])
//!     .gmdj(Gmdj::new("t").block(
//!         ThetaBuilder::group_by(&["g"]).build(),
//!         vec![AggSpec::count("cnt")],
//!     ))
//!     .build();
//! let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());
//! let out = engine.execute(&plan).unwrap();
//! assert_eq!(out.relation.len(), 2);
//! ```

use crate::cluster::{finished_rounds, net_err, run_coordinator, Cluster};
use crate::distribution::DistributionInfo;
use crate::plan::DistributedPlan;
use crate::protocol;
use crate::remote::{catalog_handshake, RemoteCluster};
use crate::scheduler::{QueryScheduler, SchedulerConfig};
use crate::site::site_session_loop;
use crate::stats::{ExecStats, QueryResult, StageTimes};
use skalla_gmdj::eval::EvalOptions;
use skalla_net::{star, CoordinatorTransport, MuxHandle, QueryMux, TcpConfig, TcpCoordinator};
use skalla_obs::{estimate_offset_us, Obs, Track};
use skalla_relation::{DomainMap, Error, Relation, Result, Schema};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The one interface every Skalla runtime exposes: what an embedder
/// needs to plan and execute distributed OLAP queries without caring
/// whether the sites are threads, processes, or a shared persistent
/// session. All three runtimes — [`Cluster`], [`RemoteCluster`], and
/// the concurrent [`Skalla`] engine — implement it, and all three
/// return byte-identical results and identical logical traffic
/// accounting for the same plan, by construction (they share the
/// crate-private coordinator driver).
pub trait Warehouse: Send + Sync {
    /// Number of warehouse sites.
    fn n_sites(&self) -> usize;

    /// The coordinator's distribution knowledge (feed this to
    /// [`crate::plan::Planner::new`]).
    fn distribution(&self) -> DistributionInfo;

    /// The plan-validation catalog: every table's schema, as (possibly
    /// empty) relations.
    fn catalog(&self) -> HashMap<String, Arc<Relation>>;

    /// Execute a distributed plan and return the result with full
    /// per-round statistics.
    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult>;
}

impl Warehouse for Cluster {
    fn n_sites(&self) -> usize {
        Cluster::n_sites(self)
    }

    fn distribution(&self) -> DistributionInfo {
        Cluster::distribution(self)
    }

    fn catalog(&self) -> HashMap<String, Arc<Relation>> {
        self.site_catalog(0).clone()
    }

    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        Cluster::execute(self, plan)
    }
}

impl Warehouse for RemoteCluster {
    fn n_sites(&self) -> usize {
        RemoteCluster::n_sites(self)
    }

    fn distribution(&self) -> DistributionInfo {
        RemoteCluster::distribution(self)
    }

    fn catalog(&self) -> HashMap<String, Arc<Relation>> {
        RemoteCluster::catalog(self).clone()
    }

    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        RemoteCluster::execute(self, plan)
    }
}

/// Everything an engine needs to know beyond where the data lives: the
/// per-site kernel options, coordinator timeouts, row blocking,
/// observability, and the admission-control discipline. One struct
/// replaces the deprecated per-runtime setter chains
/// ([`Cluster::set_eval_options`] and friends).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Local evaluation options shipped to every site with the plan.
    pub eval: EvalOptions,
    /// Per-round coordinator receive timeout.
    pub timeout: Duration,
    /// Row blocking: sites ship sub-results in chunks of this many rows
    /// (`None` ships one message per stage). See
    /// [`Cluster::set_chunk_rows`].
    pub chunk_rows: Option<usize>,
    /// Observability handle; disabled by default.
    pub obs: Obs,
    /// Multi-query admission control (concurrency, queue bound, queue
    /// timeout).
    pub scheduler: SchedulerConfig,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            eval: EvalOptions::default(),
            timeout: Duration::from_secs(120),
            chunk_rows: None,
            obs: Obs::disabled(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// Where the engine's sites live.
enum BackendSpec {
    /// Not yet chosen — [`SkallaBuilder::build`] rejects this.
    Unset,
    /// In-process: one thread per site over the channel transport. The
    /// `Cluster` is only the table-assembly vehicle; execution goes
    /// through persistent [`site_session_loop`] threads.
    Local(Cluster),
    /// Multi-process: dial `skalla-cli site` processes over TCP.
    Remote {
        addrs: Vec<String>,
        tcp: TcpConfig,
    },
}

/// Builder for the concurrent [`Skalla`] engine: pick a backend
/// ([`SkallaBuilder::partitions`] or [`SkallaBuilder::remote`]), tune
/// the [`EngineConfig`], then [`SkallaBuilder::build`].
pub struct SkallaBuilder {
    cfg: EngineConfig,
    backend: BackendSpec,
}

impl SkallaBuilder {
    /// Register a partitioned fact relation for the in-process backend:
    /// one `(fragment, φ-domains)` pair per site, in site order. The
    /// first call fixes the site count; later calls add more tables
    /// (see [`Cluster::add_table`] for the invariants).
    ///
    /// # Panics
    /// Panics if called after [`SkallaBuilder::remote`], or if the
    /// fragment count differs between tables.
    pub fn partitions<P: Into<(Relation, DomainMap)>>(
        mut self,
        table: impl Into<String>,
        parts: Vec<P>,
    ) -> SkallaBuilder {
        match &mut self.backend {
            BackendSpec::Local(cluster) => {
                cluster.add_table(table, parts);
            }
            BackendSpec::Unset => {
                self.backend = BackendSpec::Local(Cluster::from_partitions(table, parts));
            }
            BackendSpec::Remote { .. } => {
                panic!("SkallaBuilder: cannot mix partitions() with remote()");
            }
        }
        self
    }

    /// Use the multi-process TCP backend: dial one site process per
    /// address (with the config's retry/backoff) at build time and keep
    /// the connections open for the engine's lifetime. Replaces any
    /// previously configured backend.
    pub fn remote(mut self, addrs: &[String], tcp: TcpConfig) -> SkallaBuilder {
        self.backend = BackendSpec::Remote {
            addrs: addrs.to_vec(),
            tcp,
        };
        self
    }

    /// Replace the whole [`EngineConfig`] at once.
    pub fn config(mut self, cfg: EngineConfig) -> SkallaBuilder {
        self.cfg = cfg;
        self
    }

    /// Local evaluation options used at every site.
    pub fn eval_options(mut self, eval: EvalOptions) -> SkallaBuilder {
        self.cfg.eval = eval;
        self
    }

    /// Per-round coordinator receive timeout.
    pub fn timeout(mut self, timeout: Duration) -> SkallaBuilder {
        self.cfg.timeout = timeout;
        self
    }

    /// Row blocking chunk size (`None` ships one message per stage).
    pub fn chunk_rows(mut self, rows: Option<usize>) -> SkallaBuilder {
        self.cfg.chunk_rows = rows.filter(|r| *r > 0);
        self
    }

    /// Attach an observability handle: per-query spans land on
    /// [`Track::Query`] / [`Track::SiteQuery`] timelines with a
    /// `query_id` attribute.
    pub fn obs(mut self, obs: Obs) -> SkallaBuilder {
        self.cfg.obs = obs;
        self
    }

    /// How many queries may execute concurrently.
    pub fn max_concurrent(mut self, n: usize) -> SkallaBuilder {
        self.cfg.scheduler.max_concurrent = n;
        self
    }

    /// How many queries may wait for an execution slot before new
    /// arrivals are rejected.
    pub fn queue_capacity(mut self, n: usize) -> SkallaBuilder {
        self.cfg.scheduler.queue_capacity = n;
        self
    }

    /// How long a queued query waits for a slot before giving up.
    pub fn queue_timeout(mut self, timeout: Duration) -> SkallaBuilder {
        self.cfg.scheduler.queue_timeout = timeout;
        self
    }

    /// Stand the engine up: spawn the site threads (local) or dial the
    /// sites and run the versioned catalog handshake (remote), start
    /// the query multiplexer, and return the ready engine.
    pub fn build(self) -> Result<Skalla> {
        let scheduler = QueryScheduler::new(self.cfg.scheduler.clone());
        match self.backend {
            BackendSpec::Unset => Err(Error::Execution(
                "SkallaBuilder: no warehouse backend configured \
                 (call partitions() or remote())"
                    .into(),
            )),
            BackendSpec::Local(cluster) => {
                let n = cluster.n_sites();
                let (coord, site_nets) = star(n);
                let mut site_threads = Vec::with_capacity(n);
                for site_net in site_nets {
                    let catalog = cluster.site_catalog(site_net.site_id()).clone();
                    let obs = self.cfg.obs.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("skalla-site-{}", site_net.site_id()))
                        .spawn(move || {
                            // In-process sites share the coordinator's
                            // recorder, so they must not export obs
                            // deltas (importing them would duplicate
                            // every span); busy samples still travel in
                            // the telemetry replies.
                            site_session_loop(&catalog, Arc::new(site_net), false, &obs)
                        })
                        .map_err(|e| Error::Execution(format!("spawning site thread: {e}")))?;
                    site_threads.push(handle);
                }
                Ok(Skalla {
                    dist: cluster.distribution(),
                    catalog: cluster.site_catalog(0).clone(),
                    mux: QueryMux::new(Arc::new(coord)),
                    scheduler,
                    cfg: self.cfg,
                    backend: Backend::Local { site_threads },
                })
            }
            BackendSpec::Remote { addrs, tcp } => {
                if addrs.is_empty() {
                    return Err(Error::Execution("a cluster needs at least one site".into()));
                }
                let coord = TcpCoordinator::connect(&addrs, &tcp).map_err(net_err)?;
                // The handshake rides the shared connection (query id 0)
                // and is charged to the shared transport's pre-query
                // round, never to any query's stats.
                let (dist, catalog, _rows) = catalog_handshake(&coord)?;
                Ok(Skalla {
                    dist,
                    catalog,
                    mux: QueryMux::new(Arc::new(coord)),
                    scheduler,
                    cfg: self.cfg,
                    backend: Backend::Remote,
                })
            }
        }
    }
}

/// Runtime state the engine keeps per backend.
enum Backend {
    Local {
        site_threads: Vec<JoinHandle<()>>,
    },
    Remote,
}

/// How long the coordinator waits for the sites' telemetry replies
/// after releasing a query (capped further by the engine timeout). The
/// replies are sent as soon as each site joins the query's worker, so
/// on the success path this wait is microseconds; the cap only matters
/// when a query aborted while a site was mid-stage.
const TELEMETRY_TIMEOUT: Duration = Duration::from_secs(10);

/// The concurrent multi-query engine: persistent per-site connections,
/// a query multiplexer, and admission control in front.
///
/// [`Skalla::execute`] is safe to call from many threads at once — that
/// is the point. Each call is admitted by the scheduler (possibly
/// waiting for a slot), assigned a query id, and driven by the same
/// coordinator algorithm as the serial runtimes over its own
/// multiplexed transport view. Dropping the engine releases the sites
/// (shutdown broadcast on the shared connection) and joins the
/// machinery.
///
/// Construct with [`Skalla::builder`]; see the module docs for an
/// example.
pub struct Skalla {
    dist: DistributionInfo,
    catalog: HashMap<String, Arc<Relation>>,
    mux: QueryMux,
    scheduler: QueryScheduler,
    cfg: EngineConfig,
    backend: Backend,
}

impl std::fmt::Debug for Skalla {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Skalla")
            .field("n_sites", &self.mux.n_sites())
            .field("tables", &self.catalog.keys().collect::<Vec<_>>())
            .field("max_concurrent", &self.scheduler.config().max_concurrent)
            .finish()
    }
}

impl Skalla {
    /// Start configuring an engine.
    pub fn builder() -> SkallaBuilder {
        SkallaBuilder {
            cfg: EngineConfig::default(),
            backend: BackendSpec::Unset,
        }
    }

    /// Number of warehouse sites.
    pub fn n_sites(&self) -> usize {
        self.mux.n_sites()
    }

    /// The coordinator's distribution knowledge (feed this to
    /// [`crate::plan::Planner::new`]).
    pub fn distribution(&self) -> DistributionInfo {
        self.dist.clone()
    }

    /// The plan-validation catalog.
    pub fn catalog(&self) -> &HashMap<String, Arc<Relation>> {
        &self.catalog
    }

    /// The admission controller (inspect running/waiting counts).
    pub fn scheduler(&self) -> &QueryScheduler {
        &self.scheduler
    }

    /// The engine configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Execute a distributed plan as one admitted query. Blocks while
    /// the admission queue holds it; fails fast with a clean error when
    /// the queue is full or the queue timeout expires. Statistics are
    /// per-query: round labels and byte/message counts are identical to
    /// a serial run of the same plan, and site busy times are reported
    /// by the sites themselves on both backends (shipped in
    /// accounting-exempt telemetry frames, so the byte counts still
    /// match a serial run).
    pub fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        let admitted = self.scheduler.admit();
        self.publish_scheduler_gauges();
        let permit = admitted.map_err(|e| Error::Execution(format!("admission: {e}")))?;
        let query_id = self.scheduler.next_query_id();
        let result = self.run_query(plan, query_id);
        drop(permit);
        self.publish_scheduler_gauges();
        if let Ok(out) = &result {
            self.cfg.obs.hist("query.wall_s", out.stats.wall_s);
        }
        result
    }

    /// Mirror the scheduler's state into obs counters, so the live
    /// metrics endpoint can expose queue depth, in-flight count, and
    /// lifetime admission totals.
    fn publish_scheduler_gauges(&self) {
        let obs = &self.cfg.obs;
        if !obs.is_recording() {
            return;
        }
        obs.counter("scheduler.running", self.scheduler.running() as f64);
        obs.counter("scheduler.waiting", self.scheduler.waiting() as f64);
        obs.counter(
            "scheduler.admitted_total",
            self.scheduler.admitted_total() as f64,
        );
        obs.counter(
            "scheduler.rejected_total",
            self.scheduler.rejected_total() as f64,
        );
        obs.counter(
            "scheduler.timed_out_total",
            self.scheduler.timed_out_total() as f64,
        );
    }

    /// Collect the sites' telemetry replies on a query handle: up to one
    /// [`protocol::TAG_TELEMETRY`] frame per site, each stamped with the
    /// coordinator-side receive timestamp (for clock alignment). Partial
    /// collection is fine — a site that died or is stuck mid-stage just
    /// goes unreported. Stray non-telemetry frames are drained and
    /// dropped (telemetry frames are accounting-exempt, so nothing here
    /// perturbs the per-query byte accounting).
    fn collect_telemetry(
        &self,
        handle: &MuxHandle,
    ) -> Vec<(usize, protocol::SiteTelemetry, u64)> {
        let n = self.n_sites();
        let mut out = Vec::with_capacity(n);
        let deadline = Instant::now() + TELEMETRY_TIMEOUT.min(self.cfg.timeout);
        let mut missing = n;
        while missing > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match handle.recv(remaining) {
                Ok((site, msg)) if msg.tag == protocol::TAG_TELEMETRY => {
                    missing -= 1;
                    let resp_us = self.cfg.obs.recorder().map(|r| r.now_us()).unwrap_or(0);
                    if let Ok(report) = protocol::decode_telemetry(&msg.payload) {
                        out.push((site, report, resp_us));
                    }
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        out
    }

    /// Merge the sites' exported obs deltas into the engine recorder,
    /// aligning each site's monotonic clock with the coordinator's.
    /// `req_us` is the coordinator-clock send time of the request that
    /// solicited the replies; paired with each reply's receive time it
    /// bounds the per-site clock offset (the wall-clock anchor gives the
    /// initial estimate). The link index is authoritative for identity:
    /// whatever the site called itself, its spans land in the
    /// `site-N` process lane of the merged trace.
    fn import_site_obs(&self, telemetry: &[(usize, protocol::SiteTelemetry, u64)], req_us: u64) {
        let Some(rec) = self.cfg.obs.recorder() else {
            return;
        };
        for (site, report, resp_us) in telemetry {
            let Some(delta) = &report.obs else { continue };
            let mut delta = delta.clone();
            delta.process_id = *site as u32 + 2;
            delta.process_name = format!("site-{site}");
            let offset = estimate_offset_us(
                rec.wall_start_unix_us(),
                &delta,
                Some((req_us, *resp_us)),
            );
            rec.import_remote(delta, offset);
        }
    }

    /// Pull every site's current telemetry snapshot — pending busy
    /// samples, plus (standalone sites) the recorder delta since the
    /// last export — without retiring any query. Exported obs deltas
    /// are merged into the engine recorder; the raw per-site reports
    /// are returned. The pull rides an accounting-exempt telemetry
    /// frame on a throwaway query stream, so concurrent queries and
    /// their byte accounting are unaffected.
    pub fn pull_telemetry(&self) -> Vec<(usize, protocol::SiteTelemetry)> {
        let query_id = self.scheduler.next_query_id();
        let handle = self.mux.register(query_id);
        let req_us = self.cfg.obs.recorder().map(|r| r.now_us()).unwrap_or(0);
        if handle.broadcast(&protocol::telemetry_request()).is_err() {
            return Vec::new();
        }
        let telemetry = self.collect_telemetry(&handle);
        self.import_site_obs(&telemetry, req_us);
        telemetry
            .into_iter()
            .map(|(site, report, _)| (site, report))
            .collect()
    }

    /// The admitted half of [`Skalla::execute`]: mirrors the serial
    /// [`Cluster::execute`] round-for-round so per-query accounting is
    /// equal by construction — round 0 stays empty (sliced off), the
    /// "plan" round carries the plan broadcast, each stage gets its
    /// round, and the query-done release (zero payload, one framing
    /// charge per site) lands in the last round exactly where the
    /// serial path's shutdown broadcast lands.
    fn run_query(&self, plan: &DistributedPlan, query_id: u32) -> Result<QueryResult> {
        let n = self.n_sites();
        let wall_start = Instant::now();
        plan.check_structure(n)?;
        let schemas = plan.expr.validate(&self.catalog)?;
        let detail_schemas: HashMap<String, Schema> = self
            .catalog
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect();

        let handle = self.mux.register(query_id);
        handle.stats().set_obs(self.cfg.obs.clone());
        let track = Track::Query(query_id);
        let mut query_span = self
            .cfg
            .obs
            .span(track, "query")
            .with("sites", n)
            .with("rounds", plan.n_rounds())
            .with("query_id", query_id as u64);

        handle.stats().begin_round("plan");
        let plan_bytes =
            crate::plan_codec::encode_plan_with_options(plan, &self.cfg.eval, self.cfg.chunk_rows);
        let plan_msg = skalla_net::Message::new(protocol::TAG_PLAN, plan_bytes);
        let dispatch = handle.broadcast(&plan_msg).map_err(net_err);

        let run = dispatch.and_then(|()| {
            run_coordinator(
                &handle,
                plan,
                &schemas,
                &detail_schemas,
                &self.cfg.eval,
                self.cfg.timeout,
                &self.cfg.obs,
                track,
            )
        });

        // Always retire this query's site workers, even on error. Each
        // site answers the release with an accounting-exempt telemetry
        // frame carrying its busy samples (and, for standalone sites,
        // its obs delta); the request/reply timestamps bound the clock
        // alignment for the merged trace.
        let req_us = self.cfg.obs.recorder().map(|r| r.now_us()).unwrap_or(0);
        let _ = handle.broadcast(&protocol::query_done());
        let telemetry = self.collect_telemetry(&handle);
        // Merge obs deltas before the error check so a failed query's
        // site spans still land in the trace.
        self.import_site_obs(&telemetry, req_us);

        let (relation, mut stage_times) = run?;
        stage_times.insert(
            0,
            StageTimes {
                label: "plan".to_string(),
                site_busy_s: vec![0.0; n],
                ..StageTimes::default()
            },
        );
        // Site-reported busy times, identically for both backends: the
        // sites measured these around their own stage execution, so the
        // round table's busy/skew columns reflect true site-side work
        // even across process boundaries.
        for (site, report, _) in &telemetry {
            for (qid, stage, secs) in &report.busy {
                if *qid != query_id {
                    continue;
                }
                if let Some(st) = stage_times.get_mut(*stage as usize + 1) {
                    if let Some(busy) = st.site_busy_s.get_mut(*site) {
                        *busy += *secs;
                    }
                }
            }
        }
        let net = finished_rounds(handle.stats());
        query_span.arg("result_rows", relation.len());
        query_span.finish();
        Ok(QueryResult {
            relation,
            stats: ExecStats {
                stages: stage_times,
                net,
                wall_s: wall_start.elapsed().as_secs_f64(),
            },
        })
    }
}

impl Warehouse for Skalla {
    fn n_sites(&self) -> usize {
        Skalla::n_sites(self)
    }

    fn distribution(&self) -> DistributionInfo {
        Skalla::distribution(self)
    }

    fn catalog(&self) -> HashMap<String, Arc<Relation>> {
        self.catalog.clone()
    }

    fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        Skalla::execute(self, plan)
    }
}

impl Drop for Skalla {
    fn drop(&mut self) {
        // Release the sites on the shared control stream (query id 0),
        // then stop the dispatcher and join the local site threads.
        let _ = self.mux.shared_transport().broadcast(&protocol::shutdown());
        self.mux.shutdown();
        if let Backend::Local { site_threads, .. } = &mut self.backend {
            for h in site_threads.drain(..) {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Domain};

    fn parts() -> Vec<(Relation, DomainMap)> {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, 10i64], row![1i64, 30i64], row![2i64, 5i64]],
        )
        .unwrap();
        let p1 = Relation::new(schema, vec![row![3i64, 7i64], row![3i64, 9i64]]).unwrap();
        vec![
            (p0, DomainMap::new().with("g", Domain::IntRange(1, 2))),
            (p1, DomainMap::new().with("g", Domain::IntRange(3, 3))),
        ]
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .gmdj(
                Gmdj::new("t").block(
                    ThetaBuilder::group_by(&["g"])
                        .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                        .build(),
                    vec![AggSpec::count("above")],
                ),
            )
            .build()
    }

    fn engine() -> Skalla {
        Skalla::builder().partitions("t", parts()).build().unwrap()
    }

    /// Canonical row order: site replies arrive in nondeterministic
    /// order (serial paths included), so bit-identity is asserted on
    /// the key-sorted relation.
    fn canonical(rel: &Relation) -> Relation {
        rel.sorted_by(&["g"]).unwrap()
    }

    /// The serial oracle: a plain `Cluster` run of the same plan.
    fn serial(plan: &DistributedPlan) -> QueryResult {
        Cluster::from_partitions("t", parts()).execute(plan).unwrap()
    }

    #[test]
    fn engine_matches_serial_cluster_exactly() {
        let e = engine();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let serial_out = serial(&plan);
        let out = e.execute(&plan).unwrap();
        assert_eq!(
            canonical(&out.relation),
            canonical(&serial_out.relation),
            "bit-identical result"
        );
        assert_eq!(out.stats.net, serial_out.stats.net, "identical traffic");
        assert_eq!(out.stats.stages.len(), serial_out.stats.stages.len());
        for (a, b) in out.stats.stages.iter().zip(&serial_out.stats.stages) {
            assert_eq!(a.label, b.label);
            assert_eq!((a.rows_down, a.rows_up), (b.rows_down, b.rows_up));
        }
    }

    #[test]
    fn sequential_queries_reuse_the_session() {
        let e = engine();
        let planner = Planner::new(e.distribution());
        let p1 = planner.optimize(&expr(), OptFlags::none());
        let p2 = planner.optimize(&expr(), OptFlags::all());
        let r1 = e.execute(&p1).unwrap();
        let r2 = e.execute(&p2).unwrap();
        let r3 = e.execute(&p1).unwrap();
        assert!(r1.relation.same_bag(&r2.relation));
        assert_eq!(canonical(&r1.relation), canonical(&r3.relation));
        assert_eq!(r1.stats.net, r3.stats.net, "repeat runs account equally");
    }

    #[test]
    fn concurrent_queries_each_match_serial() {
        let e = Arc::new(
            Skalla::builder()
                .partitions("t", parts())
                .max_concurrent(4)
                .build()
                .unwrap(),
        );
        let planner = Planner::new(e.distribution());
        let plans: Vec<DistributedPlan> = vec![
            planner.optimize(&expr(), OptFlags::none()),
            planner.optimize(&expr(), OptFlags::all()),
            planner.optimize(&expr(), OptFlags::group_reduction_only()),
            planner.optimize(&expr(), OptFlags::none()),
        ];
        let serial_outs: Vec<QueryResult> = plans.iter().map(serial).collect();
        let handles: Vec<_> = plans
            .into_iter()
            .map(|p| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || e.execute(&p).unwrap())
            })
            .collect();
        for (h, want) in handles.into_iter().zip(serial_outs) {
            let got = h.join().unwrap();
            assert_eq!(
                canonical(&got.relation),
                canonical(&want.relation),
                "bit-identical result"
            );
            assert_eq!(got.stats.net, want.stats.net, "per-query traffic");
        }
    }

    #[test]
    fn admission_queue_full_is_a_clean_error() {
        // One slot, no waiting room: while a query holds the slot, the
        // next is rejected. We hold the slot via the scheduler directly
        // (execute() would release it too quickly to race against).
        let e = Skalla::builder()
            .partitions("t", parts())
            .max_concurrent(1)
            .queue_capacity(0)
            .build()
            .unwrap();
        let _slot = e.scheduler().admit().unwrap();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let err = e.execute(&plan).unwrap_err();
        assert!(err.to_string().contains("queue full"), "{err}");
    }

    #[test]
    fn admission_queue_timeout_is_a_clean_error() {
        let e = Skalla::builder()
            .partitions("t", parts())
            .max_concurrent(1)
            .queue_capacity(4)
            .queue_timeout(Duration::from_millis(50))
            .build()
            .unwrap();
        let _slot = e.scheduler().admit().unwrap();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        let err = e.execute(&plan).unwrap_err();
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn builder_without_backend_is_rejected() {
        let err = Skalla::builder().build().unwrap_err();
        assert!(err.to_string().contains("no warehouse backend"), "{err}");
    }

    #[test]
    fn warehouse_trait_dispatches_over_all_runtimes() {
        let plan_of = |w: &dyn Warehouse| {
            Planner::new(w.distribution()).optimize(&expr(), OptFlags::all())
        };
        let cluster: Box<dyn Warehouse> = Box::new(Cluster::from_partitions("t", parts()));
        let engine: Box<dyn Warehouse> = Box::new(engine());
        let a = cluster.execute(&plan_of(cluster.as_ref())).unwrap();
        let b = engine.execute(&plan_of(engine.as_ref())).unwrap();
        assert_eq!(canonical(&a.relation), canonical(&b.relation));
        assert_eq!(a.stats.net, b.stats.net);
        assert_eq!(cluster.n_sites(), 2);
        assert!(cluster.catalog().contains_key("t"));
    }

    #[test]
    fn per_query_obs_spans_carry_query_ids() {
        let obs = Obs::recording();
        let e = Skalla::builder()
            .partitions("t", parts())
            .obs(obs.clone())
            .build()
            .unwrap();
        let plan = Planner::new(e.distribution()).optimize(&expr(), OptFlags::none());
        e.execute(&plan).unwrap();
        drop(e);
        let rec = obs.recorder().unwrap();
        let spans = rec.spans();
        assert!(spans.iter().all(|s| s.dur_us.is_some()), "all spans closed");
        let query = spans
            .iter()
            .find(|s| s.name == "query")
            .expect("query span");
        assert_eq!(query.track, Track::Query(1));
        // Stage spans nest under the query on its own track.
        for label in ["base", "gmdj 1", "gmdj 2"] {
            let st = spans
                .iter()
                .find(|s| s.name == label && s.track == Track::Query(1))
                .unwrap_or_else(|| panic!("missing stage span {label}"));
            assert_eq!(st.parent, Some(query.id));
        }
        // Site-side task spans land on per-query site tracks.
        for site in 0..2 {
            assert_eq!(
                spans
                    .iter()
                    .filter(|s| s.track == Track::SiteQuery(site, 1))
                    .count(),
                3,
                "site {site} task spans"
            );
        }
    }
}
