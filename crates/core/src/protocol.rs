//! Wire protocol between the coordinator and the sites.
//!
//! Data that the paper's cost analysis counts — base-structure fragments
//! shipped down, sub-aggregate relations shipped up — travels as
//! codec-serialized payloads whose bytes are recorded by `skalla-net`.
//! The plan itself travels in-band too (`TAG_PLAN`, a few hundred bytes
//! broadcast once per query), as does the catalog handshake a remote
//! coordinator uses to learn site schemas (`TAG_CATALOG_REQ`/
//! `TAG_CATALOG`). Every message is payload-identical whichever transport
//! carries it, so the recorded traffic is transport-invariant.

use crate::skew::{ExtractSpec, HotReport};
use skalla_net::Message;
use skalla_obs::json::{self, Json};
use skalla_obs::TelemetryDelta;
use skalla_relation::codec::{Decoder, Encoder};
use skalla_relation::{Domain, DomainMap, Error, Relation, Result, Schema, Value};

/// The protocol generation this build speaks, negotiated in the catalog
/// handshake ([`catalog_request`] carries it, [`catalog`] echoes it).
///
/// * **v1** — `[tag u8][len u32 LE]` frames, one query per connection.
/// * **v2** — `[tag u8][query_id u32 LE][len u32 LE]` frames: every
///   message names the query it belongs to, so persistent per-site
///   connections can interleave rounds of concurrent queries, released
///   individually by [`TAG_QUERY_DONE`].
pub const PROTOCOL_VERSION: u32 = 2;

/// Coordinator → site: run a stage (optionally with a base fragment).
pub const TAG_RUN_STAGE: u8 = 1;
/// Site → coordinator: a stage's result relation.
pub const TAG_RESULT: u8 = 2;
/// Site → coordinator: execution failed.
pub const TAG_ERROR: u8 = 3;
/// Coordinator → site: query finished, thread may exit.
pub const TAG_SHUTDOWN: u8 = 4;
/// Coordinator → site: the distributed plan for the upcoming query. The
/// payload is the cluster's evaluation options (thread count, morsel size,
/// probe strategy) followed by the encoded plan — see
/// [`crate::plan_codec::encode_plan_with_options`].
pub const TAG_PLAN: u8 = 5;
/// Coordinator → site: describe your local warehouse. Sent once per
/// session by a *remote* coordinator (TCP transport), which — unlike the
/// in-process [`crate::Cluster`] — has no shared-memory view of the
/// sites' tables, schemas, or partition domains, yet needs all three for
/// plan validation and distribution-aware optimization.
pub const TAG_CATALOG_REQ: u8 = 6;
/// Site → coordinator: the catalog reply — one [`SiteCatalogEntry`] per
/// local table, sorted by table name so the payload is deterministic.
pub const TAG_CATALOG: u8 = 7;
/// Coordinator → site: one query (named by the frame's query id) is
/// finished; the site retires its per-query state. Unlike
/// [`TAG_SHUTDOWN`] — which ends the whole connection — the session and
/// its other in-flight queries continue.
pub const TAG_QUERY_DONE: u8 = 8;
/// Site → coordinator: the site's round-1 heavy-hitter report
/// ([`HotReport`]) — its local detail row count and the top group keys
/// of its space-saving sketch. Sent right after the base-stage result
/// when the plan is skew-eligible and balancing is on. Unlike telemetry,
/// this frame **is counted** in the traffic accounting: the routing
/// decision is part of the query protocol, and its (small, bounded)
/// cost belongs in the measured totals.
pub const TAG_HH_REPORT: u8 = 10;
/// Donor site → coordinator: the detail rows of its rerouted hot groups,
/// bucketed by morsel segment, loaned out for helpers to evaluate.
pub const TAG_LOAN: u8 = 11;
/// Coordinator → helper site: evaluate loaned detail segments against
/// the donor's hot base rows (each segment as a single morsel).
pub const TAG_LOAN_TASK: u8 = 12;
/// Helper site → coordinator: per-segment sub-aggregates of a loan
/// task, merged back into the donor's result in morsel order.
pub const TAG_LOAN_RESULT: u8 = 13;

/// Encode a `RUN_STAGE` message.
pub fn run_stage(stage: u32, fragment: Option<&Relation>) -> Message {
    run_stage_with_extract(stage, fragment, None)
}

/// Encode a `RUN_STAGE` message, optionally asking the site to also
/// extract and loan out the detail rows of the listed hot group keys
/// (skew balancing — the fragment it receives has had those groups'
/// base rows removed).
pub fn run_stage_with_extract(
    stage: u32,
    fragment: Option<&Relation>,
    extract: Option<&ExtractSpec>,
) -> Message {
    let mut enc = Encoder::with_capacity(16 + fragment.map(|r| r.encoded_size()).unwrap_or(0));
    enc.put_u32(stage);
    match fragment {
        Some(rel) => {
            enc.put_u8(1);
            enc.put_relation(rel);
        }
        None => enc.put_u8(0),
    }
    match extract {
        Some(spec) => {
            enc.put_u8(1);
            enc.put_u32(spec.detail_cols.len() as u32);
            for c in &spec.detail_cols {
                enc.put_str(c);
            }
            enc.put_u32(spec.keys.len() as u32);
            for k in &spec.keys {
                put_key(&mut enc, k);
            }
        }
        None => enc.put_u8(0),
    }
    Message::new(TAG_RUN_STAGE, enc.finish())
}

/// Decode a `RUN_STAGE` payload into `(stage, fragment, extract spec)`.
pub fn decode_run_stage(payload: &[u8]) -> Result<(u32, Option<Relation>, Option<ExtractSpec>)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let fragment = match dec.get_u8()? {
        0 => None,
        1 => Some(dec.get_relation()?),
        t => return Err(Error::Codec(format!("bad fragment flag {t}"))),
    };
    let extract = match dec.get_u8()? {
        0 => None,
        1 => {
            let n_cols = dec.get_u32()? as usize;
            // Pre-size from the wire count, capped by what the buffer could
            // possibly hold, so a corrupt length can't balloon the allocation.
            let mut detail_cols = Vec::with_capacity(n_cols.min(dec.remaining()));
            for _ in 0..n_cols {
                detail_cols.push(dec.get_str()?);
            }
            let n_keys = dec.get_u32()? as usize;
            let mut keys = Vec::with_capacity(n_keys.min(dec.remaining()));
            for _ in 0..n_keys {
                keys.push(get_key(&mut dec)?);
            }
            Some(ExtractSpec { detail_cols, keys })
        }
        t => return Err(Error::Codec(format!("bad extract flag {t}"))),
    };
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in RUN_STAGE".into()));
    }
    Ok((stage, fragment, extract))
}

fn put_key(enc: &mut Encoder, key: &[Value]) {
    enc.put_u32(key.len() as u32);
    for v in key {
        enc.put_value(v);
    }
}

fn get_key(dec: &mut Decoder<'_>) -> Result<Vec<Value>> {
    let arity = dec.get_u32()? as usize;
    let mut key = Vec::with_capacity(arity.min(dec.remaining()));
    for _ in 0..arity {
        key.push(dec.get_value()?);
    }
    Ok(key)
}

fn put_segments(enc: &mut Encoder, segments: &[(u32, Relation)]) {
    enc.put_u32(segments.len() as u32);
    for (seg, rel) in segments {
        enc.put_u32(*seg);
        enc.put_relation(rel);
    }
}

fn get_segments(dec: &mut Decoder<'_>) -> Result<Vec<(u32, Relation)>> {
    let n = dec.get_u32()? as usize;
    let mut segments = Vec::with_capacity(n.min(dec.remaining()));
    for _ in 0..n {
        let seg = dec.get_u32()?;
        segments.push((seg, dec.get_relation()?));
    }
    Ok(segments)
}

/// Encode a site's `HH_REPORT` frame for the given (base) stage.
pub fn hh_report(stage: u32, report: &HotReport) -> Message {
    let mut enc = Encoder::new();
    enc.put_u32(stage);
    enc.put_i64(report.rows as i64);
    enc.put_u32(report.hitters.len() as u32);
    for (key, count) in &report.hitters {
        put_key(&mut enc, key);
        enc.put_i64(*count as i64);
    }
    Message::new(TAG_HH_REPORT, enc.finish())
}

/// Decode an `HH_REPORT` payload into `(stage, report)`.
pub fn decode_hh_report(payload: &[u8]) -> Result<(u32, HotReport)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let rows = dec.get_i64()? as u64;
    let n = dec.get_u32()? as usize;
    let mut hitters = Vec::with_capacity(n.min(dec.remaining()));
    for _ in 0..n {
        let key = get_key(&mut dec)?;
        hitters.push((key, dec.get_i64()? as u64));
    }
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in HH_REPORT".into()));
    }
    Ok((stage, HotReport { rows, hitters }))
}

/// Relations keyed by the donor's morsel-segment index, in ascending
/// segment order. A loan's hot detail rows, a helper's per-segment
/// sub-aggregates, and a donor's cold tail all take this shape.
pub type Segments = Vec<(u32, Relation)>;

/// Encode a donor's `LOAN` frame: hot-key detail rows bucketed by morsel
/// segment, in ascending segment order.
pub fn loan(stage: u32, segments: &[(u32, Relation)]) -> Message {
    loan_from_encoded(stage, &encode_loan_segments(segments))
}

/// Encode just the segment list of a `LOAN` frame. A donor caches these
/// bytes alongside its detail split: the segments are identical for
/// every eligible stage of a query (only the stage prefix differs), so
/// the row serialization happens once, not once per round.
pub fn encode_loan_segments(segments: &[(u32, Relation)]) -> Vec<u8> {
    let mut enc = Encoder::new();
    put_segments(&mut enc, segments);
    enc.finish()
}

/// Incrementally builds the segment list of a `LOAN` frame while the
/// donor scans its detail partition: hot rows are serialized straight
/// from the borrowed rows, never cloned into intermediate relations.
/// Rows must arrive in ascending segment order (one scan does). The
/// result is byte-identical to [`encode_loan_segments`] over the same
/// segments.
pub struct LoanSegmentsBuilder {
    schema: skalla_relation::SchemaRef,
    /// Finished segments: `(segment, row count, encoded rows)`.
    done: Vec<(u32, u32, Vec<u8>)>,
    cur: Option<(u32, u32, Encoder)>,
}

impl LoanSegmentsBuilder {
    /// A builder for hot rows of a detail relation with this schema.
    pub fn new(schema: skalla_relation::SchemaRef) -> LoanSegmentsBuilder {
        LoanSegmentsBuilder {
            schema,
            done: Vec::new(),
            cur: None,
        }
    }

    /// Append one hot row of segment `seg`.
    pub fn push(&mut self, seg: u32, row: &skalla_relation::Row) {
        match &mut self.cur {
            Some((s, n, enc)) if *s == seg => {
                enc.put_row(row);
                *n += 1;
            }
            _ => {
                self.flush_cur();
                let mut enc = Encoder::new();
                enc.put_row(row);
                self.cur = Some((seg, 1, enc));
            }
        }
    }

    fn flush_cur(&mut self) {
        if let Some((s, n, enc)) = self.cur.take() {
            self.done.push((s, n, enc.finish()));
        }
    }

    /// The encoded segment list (the `LOAN` frame body).
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_cur();
        let mut enc = Encoder::new();
        enc.put_u32(self.done.len() as u32);
        let mut out = enc.finish();
        for (seg, n, rows) in &self.done {
            let mut head = Encoder::new();
            head.put_u32(*seg);
            head.put_schema(&self.schema);
            head.put_u32(*n);
            out.extend_from_slice(&head.finish());
            out.extend_from_slice(rows);
        }
        out
    }
}

/// Build a `LOAN` frame from a pre-encoded segment list
/// ([`encode_loan_segments`]).
pub fn loan_from_encoded(stage: u32, segments: &[u8]) -> Message {
    let mut enc = Encoder::new();
    enc.put_u32(stage);
    let mut payload = enc.finish();
    payload.extend_from_slice(segments);
    Message::new(TAG_LOAN, payload)
}

/// Decode a `LOAN` payload into `(stage, segments)`.
pub fn decode_loan(payload: &[u8]) -> Result<(u32, Segments)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let segments = get_segments(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in LOAN".into()));
    }
    Ok((stage, segments))
}

/// Encode a `LOAN_TASK` frame: the donor's hot base rows plus the detail
/// segments this helper should evaluate against them.
pub fn loan_task(stage: u32, donor: u32, base: &Relation, segments: &[(u32, Relation)]) -> Message {
    let mut enc = Encoder::with_capacity(16 + base.encoded_size());
    enc.put_u32(stage);
    enc.put_u32(donor);
    enc.put_relation(base);
    put_segments(&mut enc, segments);
    Message::new(TAG_LOAN_TASK, enc.finish())
}

/// Decode a `LOAN_TASK` payload into `(stage, donor, base, segments)`.
pub fn decode_loan_task(payload: &[u8]) -> Result<(u32, u32, Relation, Segments)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let donor = dec.get_u32()?;
    let base = dec.get_relation()?;
    let segments = get_segments(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in LOAN_TASK".into()));
    }
    Ok((stage, donor, base, segments))
}

/// Encode a helper's `LOAN_RESULT` frame: per-segment sub-aggregates for
/// the named donor's loan.
pub fn loan_result(stage: u32, donor: u32, segments: &[(u32, Relation)]) -> Message {
    let mut enc = Encoder::new();
    enc.put_u32(stage);
    enc.put_u32(donor);
    put_segments(&mut enc, segments);
    Message::new(TAG_LOAN_RESULT, enc.finish())
}

/// Decode a `LOAN_RESULT` payload into `(stage, donor, segments)`.
pub fn decode_loan_result(payload: &[u8]) -> Result<(u32, u32, Segments)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let donor = dec.get_u32()?;
    let segments = get_segments(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in LOAN_RESULT".into()));
    }
    Ok((stage, donor, segments))
}

/// Encode a `RESULT` message. `last` marks the final chunk of a stage
/// (row blocking, paper Sect. 3.2: the coordinator synchronizes chunks as
/// they arrive instead of waiting for whole sub-results).
pub fn result_chunk(stage: u32, rel: &Relation, last: bool) -> Message {
    let mut enc = Encoder::with_capacity(9 + rel.encoded_size());
    enc.put_u32(stage);
    enc.put_u8(last as u8);
    enc.put_relation(rel);
    Message::new(TAG_RESULT, enc.finish())
}

/// Encode an unchunked (single, final) `RESULT` message.
pub fn result(stage: u32, rel: &Relation) -> Message {
    result_chunk(stage, rel, true)
}

/// Decode a `RESULT` payload into `(stage, last-chunk flag, relation)`.
pub fn decode_result(payload: &[u8]) -> Result<(u32, bool, Relation)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let last = match dec.get_u8()? {
        0 => false,
        1 => true,
        t => return Err(Error::Codec(format!("bad last-chunk flag {t}"))),
    };
    let rel = dec.get_relation()?;
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in RESULT".into()));
    }
    Ok((stage, last, rel))
}

/// Encode an `ERROR` message.
pub fn error(message: &str) -> Message {
    let mut enc = Encoder::new();
    enc.put_str(message);
    Message::new(TAG_ERROR, enc.finish())
}

/// Decode an `ERROR` payload.
pub fn decode_error(payload: &[u8]) -> String {
    Decoder::new(payload)
        .get_str()
        .unwrap_or_else(|_| "malformed error message".to_string())
}

/// Encode a `SHUTDOWN` message.
pub fn shutdown() -> Message {
    Message::new(TAG_SHUTDOWN, Vec::new())
}

/// Encode a `QUERY_DONE` message. The query it retires travels in the
/// frame's query id (stamped by the per-query transport handle), so the
/// payload is empty — the same zero-payload framing charge as
/// [`shutdown`], keeping per-query traffic accounting identical to a
/// serial session's shutdown broadcast.
pub fn query_done() -> Message {
    Message::new(TAG_QUERY_DONE, Vec::new())
}

/// Bidirectional telemetry frames (alias of
/// [`skalla_net::TELEMETRY_TAG`], which the transports exempt from byte
/// accounting in both directions):
///
/// * **Site → coordinator**, stamped with a query id: the site's
///   [`SiteTelemetry`] for that query, sent in reply to
///   [`TAG_QUERY_DONE`].
/// * **Coordinator → site**: a pull request ([`telemetry_request`]);
///   the site replies with its current telemetry snapshot, echoing the
///   request's query id so a multiplexed reply routes to the puller.
pub const TAG_TELEMETRY: u8 = skalla_net::TELEMETRY_TAG;

/// What a site ships back in a telemetry frame: the busy-time samples
/// its per-query workers measured, plus (for standalone site processes
/// with their own recorder) the site's observability delta since the
/// last export. The payload is UTF-8 JSON —
/// `{"busy": [[query_id, stage, secs], ...], "obs": <delta or null>}` —
/// so operators can read captured frames directly; it never enters the
/// paper's traffic accounting (see [`TAG_TELEMETRY`]), so the encoding
/// optimizes for debuggability, not size.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SiteTelemetry {
    /// `(query_id, stage index, busy seconds)` samples, one per stage
    /// task the site executed for the queries this frame covers.
    pub busy: Vec<(u32, u32, f64)>,
    /// The site recorder's spans/events/counters/histograms since the
    /// last export; `None` when the site shares the coordinator's
    /// recorder (in-process backend) or runs without observability.
    pub obs: Option<TelemetryDelta>,
}

impl SiteTelemetry {
    /// The JSON form (see the struct docs for the shape).
    pub fn to_json(&self) -> Json {
        let busy = Json::Arr(
            self.busy
                .iter()
                .map(|(qid, stage, secs)| {
                    Json::Arr(vec![
                        Json::UInt(*qid as u64),
                        Json::UInt(*stage as u64),
                        Json::Float(*secs),
                    ])
                })
                .collect(),
        );
        let obs = match &self.obs {
            Some(delta) => delta.to_json(),
            None => Json::Null,
        };
        Json::obj(vec![("busy", busy), ("obs", obs)])
    }

    /// Decode the JSON form.
    pub fn from_json(j: &Json) -> Result<SiteTelemetry> {
        let bad = |what: &str| Error::Codec(format!("telemetry: {what}"));
        let mut busy = Vec::new();
        for entry in j
            .get("busy")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing busy array"))?
        {
            let triple = entry.as_arr().ok_or_else(|| bad("busy entry"))?;
            match triple {
                [qid, stage, secs] => busy.push((
                    qid.as_u64().ok_or_else(|| bad("busy query id"))? as u32,
                    stage.as_u64().ok_or_else(|| bad("busy stage"))? as u32,
                    secs.as_f64().ok_or_else(|| bad("busy seconds"))?,
                )),
                _ => return Err(bad("busy entry arity")),
            }
        }
        let obs = match j.get("obs") {
            None | Some(Json::Null) => None,
            Some(delta) => Some(TelemetryDelta::from_json(delta).map_err(Error::Codec)?),
        };
        Ok(SiteTelemetry { busy, obs })
    }
}

/// Encode a coordinator → site telemetry pull request (control stream,
/// empty payload).
pub fn telemetry_request() -> Message {
    Message::new(TAG_TELEMETRY, Vec::new())
}

/// Encode a site → coordinator telemetry frame. The caller stamps the
/// query id it answers for (or leaves 0 for a pull reply).
pub fn telemetry(t: &SiteTelemetry) -> Message {
    Message::new(TAG_TELEMETRY, t.to_json().to_json().into_bytes())
}

/// Decode a telemetry payload. An empty payload is the coordinator's
/// pull request, not a site report, and is rejected here.
pub fn decode_telemetry(payload: &[u8]) -> Result<SiteTelemetry> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| Error::Codec(format!("telemetry payload is not UTF-8: {e}")))?;
    let j = json::parse(text).map_err(|e| Error::Codec(format!("telemetry JSON: {e}")))?;
    SiteTelemetry::from_json(&j)
}

/// What one site advertises about one of its tables in the catalog
/// handshake: enough for a remote coordinator to validate plans (schema),
/// optimize with distribution knowledge (the site's φ domains), and print
/// diagnostics (row count).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteCatalogEntry {
    /// Table name.
    pub table: String,
    /// The fragment's schema (identical across sites by construction).
    pub schema: Schema,
    /// This site's partition-domain description φᵢ for the table.
    pub domains: DomainMap,
    /// Local fragment row count (diagnostics only).
    pub rows: u64,
}

fn put_domain(enc: &mut Encoder, d: &Domain) {
    match d {
        Domain::Any => enc.put_u8(0),
        Domain::IntRange(lo, hi) => {
            enc.put_u8(1);
            enc.put_i64(*lo);
            enc.put_i64(*hi);
        }
        Domain::Set(values) => {
            enc.put_u8(2);
            enc.put_u32(values.len() as u32);
            for v in values {
                enc.put_value(v);
            }
        }
    }
}

fn get_domain(dec: &mut Decoder<'_>) -> Result<Domain> {
    match dec.get_u8()? {
        0 => Ok(Domain::Any),
        1 => Ok(Domain::IntRange(dec.get_i64()?, dec.get_i64()?)),
        2 => {
            let n = dec.get_u32()? as usize;
            let mut values = Vec::with_capacity(n.min(dec.remaining()));
            for _ in 0..n {
                values.push(dec.get_value()?);
            }
            Ok(Domain::of(values))
        }
        t => Err(Error::Codec(format!("bad domain tag {t}"))),
    }
}

fn put_domain_map(enc: &mut Encoder, map: &DomainMap) {
    // DomainMap iterates in hash order; sort so the payload (and hence
    // the recorded byte counts) is deterministic.
    let mut columns: Vec<&str> = map.constrained_columns().collect();
    columns.sort_unstable();
    enc.put_u32(columns.len() as u32);
    for col in columns {
        enc.put_str(col);
        put_domain(enc, map.get(col));
    }
}

fn get_domain_map(dec: &mut Decoder<'_>) -> Result<DomainMap> {
    let n = dec.get_u32()? as usize;
    let mut map = DomainMap::new();
    for _ in 0..n {
        let col = dec.get_str()?;
        map.insert(col, get_domain(dec)?);
    }
    Ok(map)
}

/// Encode a `CATALOG_REQ` message, carrying the coordinator's
/// [`PROTOCOL_VERSION`] for negotiation.
pub fn catalog_request() -> Message {
    let mut enc = Encoder::new();
    enc.put_u32(PROTOCOL_VERSION);
    Message::new(TAG_CATALOG_REQ, enc.finish())
}

/// Decode a `CATALOG_REQ` payload into the coordinator's protocol
/// version. v1 coordinators sent an empty request, so an empty payload
/// decodes as version 1.
pub fn decode_catalog_request(payload: &[u8]) -> Result<u32> {
    if payload.is_empty() {
        return Ok(1);
    }
    let mut dec = Decoder::new(payload);
    let version = dec.get_u32()?;
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in CATALOG_REQ".into()));
    }
    Ok(version)
}

/// Encode a `CATALOG` reply. The payload leads with the site's
/// [`PROTOCOL_VERSION`] (completing the handshake negotiation); entries
/// are sorted by table name so every site produces a deterministic
/// payload for the same warehouse.
pub fn catalog(entries: &[SiteCatalogEntry]) -> Message {
    let mut sorted: Vec<&SiteCatalogEntry> = entries.iter().collect();
    sorted.sort_unstable_by(|a, b| a.table.cmp(&b.table));
    let mut enc = Encoder::new();
    enc.put_u32(PROTOCOL_VERSION);
    enc.put_u32(sorted.len() as u32);
    for e in sorted {
        enc.put_str(&e.table);
        enc.put_schema(&e.schema);
        put_domain_map(&mut enc, &e.domains);
        enc.put_i64(e.rows as i64);
    }
    Message::new(TAG_CATALOG, enc.finish())
}

/// Decode a `CATALOG` payload, verifying the site's protocol version
/// matches this coordinator's [`PROTOCOL_VERSION`].
pub fn decode_catalog(payload: &[u8]) -> Result<Vec<SiteCatalogEntry>> {
    let mut dec = Decoder::new(payload);
    let version = dec.get_u32()?;
    if version != PROTOCOL_VERSION {
        return Err(Error::Codec(format!(
            "protocol version mismatch: site speaks v{version}, this coordinator v{PROTOCOL_VERSION}"
        )));
    }
    let n = dec.get_u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(dec.remaining()));
    for _ in 0..n {
        let table = dec.get_str()?;
        let schema = dec.get_schema()?;
        let domains = get_domain_map(&mut dec)?;
        let rows = dec.get_i64()? as u64;
        entries.push(SiteCatalogEntry {
            table,
            schema,
            domains,
            rows,
        });
    }
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in CATALOG".into()));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_relation::{row, DataType, Schema};

    fn rel() -> Relation {
        Relation::new(
            Schema::of(&[("k", DataType::Int)]),
            vec![row![1i64], row![2i64]],
        )
        .unwrap()
    }

    #[test]
    fn run_stage_round_trip() {
        let m = run_stage(3, Some(&rel()));
        assert_eq!(m.tag, TAG_RUN_STAGE);
        let (stage, frag, extract) = decode_run_stage(&m.payload).unwrap();
        assert_eq!(stage, 3);
        assert_eq!(frag.unwrap(), rel());
        assert!(extract.is_none());

        let m = run_stage(0, None);
        let (stage, frag, extract) = decode_run_stage(&m.payload).unwrap();
        assert_eq!(stage, 0);
        assert!(frag.is_none());
        assert!(extract.is_none());
    }

    #[test]
    fn run_stage_with_extract_round_trip() {
        use skalla_relation::Value;
        let spec = ExtractSpec {
            detail_cols: vec!["g".to_string(), "h".to_string()],
            keys: vec![
                vec![Value::Int(7), Value::from("x")],
                vec![Value::Int(9), Value::Null],
            ],
        };
        let m = run_stage_with_extract(2, Some(&rel()), Some(&spec));
        let (stage, frag, extract) = decode_run_stage(&m.payload).unwrap();
        assert_eq!(stage, 2);
        assert_eq!(frag.unwrap(), rel());
        assert_eq!(extract.unwrap(), spec);
        // The wrapper without a spec is byte-identical to run_stage, so
        // the accounted traffic of an unbalanced run is unchanged.
        assert_eq!(
            run_stage(2, Some(&rel())).payload,
            run_stage_with_extract(2, Some(&rel()), None).payload
        );
    }

    #[test]
    fn result_round_trip() {
        let m = result(7, &rel());
        let (stage, last, r) = decode_result(&m.payload).unwrap();
        assert_eq!(stage, 7);
        assert!(last);
        assert_eq!(r, rel());
        let m = result_chunk(7, &rel(), false);
        let (_, last, _) = decode_result(&m.payload).unwrap();
        assert!(!last);
    }

    #[test]
    fn error_round_trip() {
        let m = error("something broke");
        assert_eq!(decode_error(&m.payload), "something broke");
        assert_eq!(decode_error(&[0xFF]), "malformed error message");
    }

    #[test]
    fn catalog_round_trip_is_sorted_and_deterministic() {
        use skalla_relation::Value;
        let entries = vec![
            SiteCatalogEntry {
                table: "zeta".to_string(),
                schema: Schema::of(&[("k", DataType::Int)]),
                domains: DomainMap::new()
                    .with("k", Domain::IntRange(0, 9))
                    .with("tag", Domain::of([Value::Int(1), Value::Int(2)])),
                rows: 42,
            },
            SiteCatalogEntry {
                table: "alpha".to_string(),
                schema: Schema::of(&[("x", DataType::Double)]),
                domains: DomainMap::new(),
                rows: 0,
            },
        ];
        let m = catalog(&entries);
        assert_eq!(m.tag, TAG_CATALOG);
        let back = decode_catalog(&m.payload).unwrap();
        // Sorted by table name regardless of input order.
        assert_eq!(back[0].table, "alpha");
        assert_eq!(back[1].table, "zeta");
        assert_eq!(back[1].rows, 42);
        assert_eq!(back[1].domains.get("k"), &Domain::IntRange(0, 9));
        assert_eq!(
            back[1].domains.get("tag"),
            &Domain::of([Value::Int(1), Value::Int(2)])
        );
        assert_eq!(back[1].domains.get("other"), &Domain::Any);
        // Deterministic payload: encoding twice yields identical bytes
        // (DomainMap iteration order must not leak into the wire form).
        assert_eq!(m.payload, catalog(&entries).payload);
        assert!(decode_catalog(&m.payload[..m.payload.len() - 1]).is_err());
    }

    #[test]
    fn handshake_negotiates_protocol_version() {
        let req = catalog_request();
        assert_eq!(req.tag, TAG_CATALOG_REQ);
        assert_eq!(
            decode_catalog_request(&req.payload).unwrap(),
            PROTOCOL_VERSION
        );
        // A v1 coordinator sent an empty request.
        assert_eq!(decode_catalog_request(&[]).unwrap(), 1);

        // A reply from a site speaking a different version is rejected
        // with a diagnostic naming both versions.
        let m = catalog(&[]);
        let mut tampered = m.payload.clone();
        tampered[0] = 99;
        let err = decode_catalog(&tampered).unwrap_err().to_string();
        assert!(err.contains("version mismatch"), "got: {err}");
        assert!(err.contains("v99"), "got: {err}");
    }

    #[test]
    fn query_done_is_zero_payload() {
        // QUERY_DONE must charge exactly what SHUTDOWN charges, so a
        // concurrent query's final round equals a serial session's.
        assert_eq!(query_done().payload.len(), shutdown().payload.len());
        assert_eq!(query_done().tag, TAG_QUERY_DONE);
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_run_stage(&[1, 0, 0, 0, 9]).is_err());
        assert!(decode_result(&[1]).is_err());
        let mut m = run_stage(1, None).payload;
        m.push(0);
        assert!(decode_run_stage(&m).is_err());
        // Truncated and padded skew frames are rejected too.
        let h = hh_report(0, &HotReport::default()).payload;
        assert!(decode_hh_report(&h[..h.len() - 1]).is_err());
        let mut l = loan(1, &[]).payload;
        l.push(0);
        assert!(decode_loan(&l).is_err());
        assert!(decode_loan_task(&[0, 0, 0, 0]).is_err());
        assert!(decode_loan_result(&[0, 0, 0, 0]).is_err());
    }

    #[test]
    fn skew_frames_round_trip() {
        use skalla_relation::Value;
        let report = HotReport {
            rows: 1234,
            hitters: vec![
                (vec![Value::Int(7)], 600),
                (vec![Value::from("hot")], 250),
            ],
        };
        let m = hh_report(0, &report);
        assert_eq!(m.tag, TAG_HH_REPORT);
        assert_ne!(m.tag, skalla_net::TELEMETRY_TAG, "HH reports are counted");
        let (stage, back) = decode_hh_report(&m.payload).unwrap();
        assert_eq!(stage, 0);
        assert_eq!(back, report);

        let segments = vec![(0u32, rel()), (3u32, rel())];
        let m = loan(2, &segments);
        assert_eq!(m.tag, TAG_LOAN);
        let (stage, back) = decode_loan(&m.payload).unwrap();
        assert_eq!((stage, back), (2, segments.clone()));

        let m = loan_task(2, 5, &rel(), &segments);
        assert_eq!(m.tag, TAG_LOAN_TASK);
        let (stage, donor, base, back) = decode_loan_task(&m.payload).unwrap();
        assert_eq!((stage, donor), (2, 5));
        assert_eq!(base, rel());
        assert_eq!(back, segments);

        let m = loan_result(2, 5, &segments);
        assert_eq!(m.tag, TAG_LOAN_RESULT);
        let (stage, donor, back) = decode_loan_result(&m.payload).unwrap();
        assert_eq!((stage, donor), (2, 5));
        assert_eq!(back, segments);
    }

    #[test]
    fn telemetry_round_trip() {
        let t = SiteTelemetry {
            busy: vec![(1, 0, 0.25), (1, 1, 0.5), (7, 2, 0.125)],
            obs: None,
        };
        let m = telemetry(&t);
        assert_eq!(m.tag, TAG_TELEMETRY);
        assert_eq!(m.tag, skalla_net::TELEMETRY_TAG, "accounting exemption tag");
        let back = decode_telemetry(&m.payload).unwrap();
        assert_eq!(back, t);
        // The pull request is empty and not decodable as a report.
        assert!(telemetry_request().payload.is_empty());
        assert!(decode_telemetry(&[]).is_err());
        assert!(decode_telemetry(b"{\"obs\":null}").is_err(), "missing busy");
        assert!(decode_telemetry(&[0xFF]).is_err(), "not UTF-8");
    }
}
