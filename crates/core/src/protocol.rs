//! Wire protocol between the coordinator and the sites.
//!
//! Data that the paper's cost analysis counts — base-structure fragments
//! shipped down, sub-aggregate relations shipped up — travels as
//! codec-serialized payloads whose bytes are recorded by `skalla-net`. The
//! *plan* itself is distributed out-of-band (sites receive an `Arc` of the
//! plan at spawn time): plan text is a few hundred bytes sent once, which
//! the paper does not account, and keeping it out-of-band avoids
//! maintaining a serializer for expression trees.

use skalla_net::Message;
use skalla_relation::codec::{Decoder, Encoder};
use skalla_relation::{Error, Relation, Result};

/// Coordinator → site: run a stage (optionally with a base fragment).
pub const TAG_RUN_STAGE: u8 = 1;
/// Site → coordinator: a stage's result relation.
pub const TAG_RESULT: u8 = 2;
/// Site → coordinator: execution failed.
pub const TAG_ERROR: u8 = 3;
/// Coordinator → site: query finished, thread may exit.
pub const TAG_SHUTDOWN: u8 = 4;
/// Coordinator → site: the distributed plan for the upcoming query. The
/// payload is the cluster's evaluation options (thread count, morsel size,
/// probe strategy) followed by the encoded plan — see
/// [`crate::plan_codec::encode_plan_with_options`].
pub const TAG_PLAN: u8 = 5;

/// Encode a `RUN_STAGE` message.
pub fn run_stage(stage: u32, fragment: Option<&Relation>) -> Message {
    let mut enc = Encoder::with_capacity(
        8 + fragment.map(|r| r.encoded_size()).unwrap_or(0),
    );
    enc.put_u32(stage);
    match fragment {
        Some(rel) => {
            enc.put_u8(1);
            enc.put_relation(rel);
        }
        None => enc.put_u8(0),
    }
    Message::new(TAG_RUN_STAGE, enc.finish())
}

/// Decode a `RUN_STAGE` payload.
pub fn decode_run_stage(payload: &[u8]) -> Result<(u32, Option<Relation>)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let fragment = match dec.get_u8()? {
        0 => None,
        1 => Some(dec.get_relation()?),
        t => return Err(Error::Codec(format!("bad fragment flag {t}"))),
    };
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in RUN_STAGE".into()));
    }
    Ok((stage, fragment))
}

/// Encode a `RESULT` message. `last` marks the final chunk of a stage
/// (row blocking, paper Sect. 3.2: the coordinator synchronizes chunks as
/// they arrive instead of waiting for whole sub-results).
pub fn result_chunk(stage: u32, rel: &Relation, last: bool) -> Message {
    let mut enc = Encoder::with_capacity(9 + rel.encoded_size());
    enc.put_u32(stage);
    enc.put_u8(last as u8);
    enc.put_relation(rel);
    Message::new(TAG_RESULT, enc.finish())
}

/// Encode an unchunked (single, final) `RESULT` message.
pub fn result(stage: u32, rel: &Relation) -> Message {
    result_chunk(stage, rel, true)
}

/// Decode a `RESULT` payload into `(stage, last-chunk flag, relation)`.
pub fn decode_result(payload: &[u8]) -> Result<(u32, bool, Relation)> {
    let mut dec = Decoder::new(payload);
    let stage = dec.get_u32()?;
    let last = match dec.get_u8()? {
        0 => false,
        1 => true,
        t => return Err(Error::Codec(format!("bad last-chunk flag {t}"))),
    };
    let rel = dec.get_relation()?;
    if dec.remaining() != 0 {
        return Err(Error::Codec("trailing bytes in RESULT".into()));
    }
    Ok((stage, last, rel))
}

/// Encode an `ERROR` message.
pub fn error(message: &str) -> Message {
    let mut enc = Encoder::new();
    enc.put_str(message);
    Message::new(TAG_ERROR, enc.finish())
}

/// Decode an `ERROR` payload.
pub fn decode_error(payload: &[u8]) -> String {
    Decoder::new(payload)
        .get_str()
        .unwrap_or_else(|_| "malformed error message".to_string())
}

/// Encode a `SHUTDOWN` message.
pub fn shutdown() -> Message {
    Message::new(TAG_SHUTDOWN, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_relation::{row, DataType, Schema};

    fn rel() -> Relation {
        Relation::new(
            Schema::of(&[("k", DataType::Int)]),
            vec![row![1i64], row![2i64]],
        )
        .unwrap()
    }

    #[test]
    fn run_stage_round_trip() {
        let m = run_stage(3, Some(&rel()));
        assert_eq!(m.tag, TAG_RUN_STAGE);
        let (stage, frag) = decode_run_stage(&m.payload).unwrap();
        assert_eq!(stage, 3);
        assert_eq!(frag.unwrap(), rel());

        let m = run_stage(0, None);
        let (stage, frag) = decode_run_stage(&m.payload).unwrap();
        assert_eq!(stage, 0);
        assert!(frag.is_none());
    }

    #[test]
    fn result_round_trip() {
        let m = result(7, &rel());
        let (stage, last, r) = decode_result(&m.payload).unwrap();
        assert_eq!(stage, 7);
        assert!(last);
        assert_eq!(r, rel());
        let m = result_chunk(7, &rel(), false);
        let (_, last, _) = decode_result(&m.payload).unwrap();
        assert!(!last);
    }

    #[test]
    fn error_round_trip() {
        let m = error("something broke");
        assert_eq!(decode_error(&m.payload), "something broke");
        assert_eq!(decode_error(&[0xFF]), "malformed error message");
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_run_stage(&[1, 0, 0, 0, 9]).is_err());
        assert!(decode_result(&[1]).is_err());
        let mut m = run_stage(1, None).payload;
        m.push(0);
        assert!(decode_run_stage(&m).is_err());
    }
}
