//! Site-side stage execution.
//!
//! Each Skalla site is a local warehouse fully capable of evaluating GMDJ
//! expressions over its partition (paper Sect. 2.1). [`execute_stage`] is
//! the pure function a site thread runs per round: given the shared plan,
//! the stage index and the base-structure fragment received from the
//! coordinator, it produces the relation to ship back.

use crate::plan::{DistributedPlan, StageKind, Unit};
use skalla_gmdj::eval::{eval_local_traced, finalize_physical, EvalOptions};
use skalla_gmdj::{BaseQuery, Catalog};
use skalla_obs::Obs;
use skalla_relation::{Error, Relation, Result, Value};
use std::collections::HashSet;

/// Execute one stage at a site. `incoming` is the base fragment shipped by
/// the coordinator (`None` for base stages and folded units).
pub fn execute_stage(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: usize,
    incoming: Option<Relation>,
    eval: EvalOptions,
) -> Result<Relation> {
    execute_stage_traced(catalog, plan, stage, incoming, eval, &Obs::disabled(), 0)
}

/// [`execute_stage`] with observability: the GMDJ kernel records
/// per-morsel spans on this site's worker tracks.
#[allow(clippy::too_many_arguments)]
pub fn execute_stage_traced(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: usize,
    incoming: Option<Relation>,
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Relation> {
    let st = plan
        .stages
        .get(stage)
        .ok_or_else(|| Error::Execution(format!("no stage {stage}")))?;
    match &st.kind {
        StageKind::Base => plan.base_fragment(catalog),
        StageKind::Unit(unit) => {
            execute_unit(catalog, plan, unit, incoming, eval, obs, site)
        }
    }
}

impl DistributedPlan {
    /// The local base fragment: the base query evaluated over this site's
    /// partition.
    pub fn base_fragment(&self, catalog: &dyn Catalog) -> Result<Relation> {
        self.expr.base.eval(catalog)
    }
}

fn base_input(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    unit: &Unit,
    incoming: Option<Relation>,
) -> Result<Relation> {
    if unit.fold_base {
        // Prop 2: derive the local groups from the local detail partition.
        match &plan.expr.base {
            BaseQuery::DistinctProject { .. } => plan.base_fragment(catalog),
            BaseQuery::Literal(_) => Err(Error::Plan(
                "fold_base with a literal base relation".into(),
            )),
        }
    } else {
        incoming.ok_or_else(|| {
            Error::Execution("unit stage without a base fragment".into())
        })
    }
}

fn execute_unit(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    unit: &Unit,
    incoming: Option<Relation>,
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Relation> {
    let detail = catalog.table(&unit.table)?;
    let b_frag = base_input(catalog, plan, unit, incoming)?;
    let key: Vec<&str> = plan.key.iter().map(String::as_str).collect();

    if unit.local_chain {
        // Thm 5 / Cor 1: evaluate the whole unit locally on owned groups,
        // finalizing between operators, and ship logical results.
        let owned = if unit.fold_base {
            b_frag
        } else {
            let (bcol, dcol) = unit
                .ownership
                .as_ref()
                .ok_or_else(|| Error::Plan("chained unit without ownership".into()))?;
            let local_values: HashSet<Value> = {
                let di = detail.schema().index_of(dcol)?;
                detail.iter().map(|r| r.get(di).clone()).collect()
            };
            let bi = b_frag.schema().index_of(bcol)?;
            b_frag.filter(|row| local_values.contains(row.get(bi)))
        };
        let mut cur = owned;
        for op in &plan.expr.ops[unit.ops.clone()] {
            let local = eval_local_traced(&cur, detail, op, eval, obs, site)?;
            cur = finalize_physical(
                &local.physical,
                cur.schema().len(),
                op,
                detail.schema(),
            )?;
        }
        // Ship K + every logical aggregate the unit produced.
        let mut cols = key.clone();
        for op in &plan.expr.ops[unit.ops.clone()] {
            cols.extend(op.output_names());
        }
        cur.project(&cols)
    } else {
        // One operator: sub-aggregates, shipped as physical accumulators.
        debug_assert_eq!(unit.ops.len(), 1);
        let op = &plan.expr.ops[unit.ops.start];
        let local = eval_local_traced(&b_frag, detail, op, eval, obs, site)?;
        let shipped = if unit.site_reduce {
            local.reduced()
        } else {
            local.physical
        };
        // Project to K + the physical accumulator columns.
        let base_arity = b_frag.schema().len();
        let mut idx: Vec<usize> = Vec::with_capacity(key.len());
        for k in &key {
            idx.push(shipped.schema().index_of(k)?);
        }
        idx.extend(base_arity..shipped.schema().len());
        let schema = shipped.schema().project(&idx)?;
        let rows = shipped.iter().map(|r| r.project(&idx)).collect();
        Relation::new(schema, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionInfo;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Schema};
    use std::collections::HashMap;

    fn site_catalog() -> HashMap<String, Relation> {
        let t = Relation::new(
            Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
            vec![row![1i64, 10i64], row![1i64, 30i64], row![2i64, 7i64]],
        )
        .unwrap();
        HashMap::from([("t".to_string(), t)])
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .build()
    }

    #[test]
    fn base_stage_ships_local_groups() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        let out = execute_stage(&cat, &plan, 0, None, EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().column_names(), ["g"]);
    }

    #[test]
    fn unit_stage_ships_key_plus_accumulators() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64], row![3i64]],
        )
        .unwrap();
        let out = execute_stage(&cat, &plan, 1, Some(b), EvalOptions::default()).unwrap();
        assert_eq!(
            out.schema().column_names(),
            ["g", "cnt", "avg__sum", "avg__cnt"]
        );
        assert_eq!(out.len(), 3);
        // Group 3 has no local tuples, but without site reduction it ships.
        assert_eq!(out.rows()[2], Row::new(vec![
            Value::Int(3),
            Value::Int(0),
            Value::Null,
            Value::Int(0),
        ]));
    }

    #[test]
    fn site_reduce_drops_unmatched_groups() {
        let flags = OptFlags {
            group_reduction_site: true,
            ..OptFlags::none()
        };
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), flags);
        let cat = site_catalog();
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![3i64]],
        )
        .unwrap();
        let out = execute_stage(&cat, &plan, 1, Some(b), EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].get(0), &Value::Int(1));
    }

    #[test]
    fn missing_fragment_is_an_error() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        assert!(execute_stage(&cat, &plan, 1, None, EvalOptions::default()).is_err());
        assert!(execute_stage(&cat, &plan, 9, None, EvalOptions::default()).is_err());
    }
}
