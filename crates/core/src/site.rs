//! Site-side stage execution and the site driver loop.
//!
//! Each Skalla site is a local warehouse fully capable of evaluating GMDJ
//! expressions over its partition (paper Sect. 2.1). [`execute_stage`] is
//! the pure function a site runs per round: given the shared plan, the
//! stage index and the base-structure fragment received from the
//! coordinator, it produces the relation to ship back. [`site_loop`]
//! wraps it in the protocol driver — receive plan, execute stage tasks,
//! reply, until shutdown — over any [`SiteTransport`], so the same loop
//! serves both an in-process site thread and a standalone TCP site
//! process (`skalla-cli site`).

use crate::plan::{DistributedPlan, StageKind, Unit};
use crate::protocol;
use parking_lot::Mutex;
use skalla_gmdj::eval::{eval_local_traced, finalize_physical, EvalOptions};
use skalla_gmdj::{BaseQuery, Catalog};
use skalla_net::SiteTransport;
use skalla_obs::{Obs, Track};
use skalla_relation::{Error, Relation, Result, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Execute one stage at a site. `incoming` is the base fragment shipped by
/// the coordinator (`None` for base stages and folded units).
pub fn execute_stage(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: usize,
    incoming: Option<Relation>,
    eval: EvalOptions,
) -> Result<Relation> {
    execute_stage_traced(catalog, plan, stage, incoming, eval, &Obs::disabled(), 0)
}

/// [`execute_stage`] with observability: the GMDJ kernel records
/// per-morsel spans on this site's worker tracks.
#[allow(clippy::too_many_arguments)]
pub fn execute_stage_traced(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: usize,
    incoming: Option<Relation>,
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Relation> {
    let st = plan
        .stages
        .get(stage)
        .ok_or_else(|| Error::Execution(format!("no stage {stage}")))?;
    match &st.kind {
        StageKind::Base => plan.base_fragment(catalog),
        StageKind::Unit(unit) => execute_unit(catalog, plan, unit, incoming, eval, obs, site),
    }
}

impl DistributedPlan {
    /// The local base fragment: the base query evaluated over this site's
    /// partition.
    pub fn base_fragment(&self, catalog: &dyn Catalog) -> Result<Relation> {
        self.expr.base.eval(catalog)
    }
}

fn base_input(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    unit: &Unit,
    incoming: Option<Relation>,
) -> Result<Relation> {
    if unit.fold_base {
        // Prop 2: derive the local groups from the local detail partition.
        match &plan.expr.base {
            BaseQuery::DistinctProject { .. } => plan.base_fragment(catalog),
            BaseQuery::Literal(_) => {
                Err(Error::Plan("fold_base with a literal base relation".into()))
            }
        }
    } else {
        incoming.ok_or_else(|| Error::Execution("unit stage without a base fragment".into()))
    }
}

fn execute_unit(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    unit: &Unit,
    incoming: Option<Relation>,
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Relation> {
    let detail = catalog.table(&unit.table)?;
    let b_frag = base_input(catalog, plan, unit, incoming)?;
    let key: Vec<&str> = plan.key.iter().map(String::as_str).collect();

    if unit.local_chain {
        // Thm 5 / Cor 1: evaluate the whole unit locally on owned groups,
        // finalizing between operators, and ship logical results.
        let owned = if unit.fold_base {
            b_frag
        } else {
            let (bcol, dcol) = unit
                .ownership
                .as_ref()
                .ok_or_else(|| Error::Plan("chained unit without ownership".into()))?;
            let local_values: HashSet<Value> = {
                let di = detail.schema().index_of(dcol)?;
                detail.iter().map(|r| r.get(di).clone()).collect()
            };
            let bi = b_frag.schema().index_of(bcol)?;
            b_frag.filter(|row| local_values.contains(row.get(bi)))
        };
        let mut cur = owned;
        for op in &plan.expr.ops[unit.ops.clone()] {
            let local = eval_local_traced(&cur, detail, op, eval, obs, site)?;
            cur = finalize_physical(&local.physical, cur.schema().len(), op, detail.schema())?;
        }
        // Ship K + every logical aggregate the unit produced.
        let mut cols = key.clone();
        for op in &plan.expr.ops[unit.ops.clone()] {
            cols.extend(op.output_names());
        }
        cur.project(&cols)
    } else {
        // One operator: sub-aggregates, shipped as physical accumulators.
        debug_assert_eq!(unit.ops.len(), 1);
        let op = &plan.expr.ops[unit.ops.start];
        let local = eval_local_traced(&b_frag, detail, op, eval, obs, site)?;
        let shipped = if unit.site_reduce {
            local.reduced()
        } else {
            local.physical
        };
        // Project to K + the physical accumulator columns.
        let base_arity = b_frag.schema().len();
        let mut idx: Vec<usize> = Vec::with_capacity(key.len());
        for k in &key {
            idx.push(shipped.schema().index_of(k)?);
        }
        idx.extend(base_arity..shipped.schema().len());
        let schema = shipped.schema().project(&idx)?;
        let rows = shipped.iter().map(|r| r.project(&idx)).collect();
        Relation::new(schema, rows)
    }
}

/// Shared collector for `(site, stage, busy seconds)` samples reported by
/// in-process site threads.
pub type BusyTimes = Mutex<Vec<(usize, usize, f64)>>;

/// The per-site worker loop: receive the plan (which carries the kernel's
/// evaluation options and the row-blocking chunk size), then wait for
/// stage tasks, execute, reply — until a shutdown message or the link
/// dies. `times` (when given) collects `(site, stage, busy seconds)`
/// samples; the in-process [`crate::Cluster`] feeds them into
/// [`crate::stats::StageTimes`], while a serial remote session has no
/// accounting-exempt way to report them (a serial coordinator never
/// sends the `QUERY_DONE` that triggers a telemetry reply in
/// [`site_session_loop`]), so a standalone site passes `None`.
pub fn site_loop(
    catalog: &HashMap<String, Arc<Relation>>,
    net: &dyn SiteTransport,
    times: Option<&BusyTimes>,
    obs: &Obs,
) {
    let mut plan: Option<DistributedPlan> = None;
    let mut eval = EvalOptions::default();
    let mut chunk_rows: Option<usize> = None;
    loop {
        let Ok(msg) = net.recv() else {
            return; // coordinator hung up (or the link timed out)
        };
        match msg.tag {
            protocol::TAG_SHUTDOWN => return,
            protocol::TAG_PLAN => match crate::plan_codec::decode_plan_with_options(&msg.payload) {
                Ok((p, e, c)) => {
                    plan = Some(p);
                    eval = e;
                    chunk_rows = c;
                }
                Err(e) => {
                    let _ = net.send(protocol::error(&format!("bad plan: {e}")));
                }
            },
            protocol::TAG_RUN_STAGE => {
                let Some(plan) = &plan else {
                    let _ = net.send(protocol::error("stage task before plan"));
                    continue;
                };
                let replies = match protocol::decode_run_stage(&msg.payload) {
                    Ok((stage, fragment)) => {
                        let label = plan
                            .stages
                            .get(stage as usize)
                            .map(|s| s.label.as_str())
                            .unwrap_or("stage");
                        let mut task_span = obs.span(Track::Site(net.site_id()), label);
                        if let Some(f) = &fragment {
                            task_span.arg("rows_in", f.len());
                        }
                        let t = Instant::now();
                        let out = execute_stage_traced(
                            catalog,
                            plan,
                            stage as usize,
                            fragment,
                            eval,
                            obs,
                            net.site_id(),
                        );
                        if let Some(times) = times {
                            times.lock().push((
                                net.site_id(),
                                stage as usize,
                                t.elapsed().as_secs_f64(),
                            ));
                        }
                        match out {
                            Ok(rel) => {
                                task_span.arg("rows_out", rel.len());
                                task_span.finish();
                                chunked_results(stage, &rel, chunk_rows)
                            }
                            Err(e) => {
                                task_span.arg("error", e.to_string());
                                task_span.finish();
                                vec![protocol::error(&e.to_string())]
                            }
                        }
                    }
                    Err(e) => vec![protocol::error(&e.to_string())],
                };
                for reply in replies {
                    if net.send(reply).is_err() {
                        return;
                    }
                }
            }
            _ => {
                let _ = net.send(protocol::error("unexpected message tag"));
            }
        }
    }
}

/// Shared collector for `(query_id, site, stage, busy seconds)` samples
/// reported by per-query site workers under the concurrent engine.
pub type QueryBusyTimes = Mutex<Vec<(u32, usize, usize, f64)>>;

/// The multi-query session loop: a demultiplexer that routes frames to
/// per-query workers keyed by [`skalla_net::Message::query_id`].
///
/// Each worker owns one query's state — the decoded plan, its evaluation
/// options, its row-blocking chunk size — exactly the state [`site_loop`]
/// keeps for its single query, so concurrent queries interleave on the
/// site without sharing mutable state. Worker replies are stamped with
/// the worker's query id and serialized by the transport (one frame per
/// `send`), so interleaved queries never corrupt each other's streams.
///
/// Control flow on the session (query id 0) stream:
/// * [`protocol::TAG_QUERY_DONE`] retires the frame's query worker and
///   answers with a [`protocol::TAG_TELEMETRY`] frame carrying that
///   query's busy-time samples (and, when `export_obs` is set, the site
///   recorder's delta since the last export);
/// * [`protocol::TAG_TELEMETRY`] is a pull: the site replies — echoing
///   the request's query id, so a multiplexing coordinator can route the
///   answer — with a snapshot of all pending busy samples plus the obs
///   delta, without retiring anything;
/// * [`protocol::TAG_SHUTDOWN`] ends the session: all workers are joined
///   and the loop returns;
/// * a dead link also ends the session.
///
/// Telemetry frames ride [`skalla_net::TELEMETRY_TAG`] and are exempt
/// from the byte accounting on every transport, so shipping timings no
/// longer breaks the channel/TCP byte-identity invariant (the reason the
/// serial [`site_loop`] cannot report remote busy times).
///
/// `export_obs` should be `true` only when this site owns its recorder
/// (a standalone `skalla-cli site` process): an in-process site thread
/// shares the coordinator's recorder, and exporting from it would
/// duplicate every span on import.
///
/// The legacy serial coordinator (every frame on query id 0) works
/// unchanged: its frames all route to worker 0, and it never sends
/// `QUERY_DONE`, so no telemetry is emitted.
pub fn site_session_loop(
    catalog: &HashMap<String, Arc<Relation>>,
    net: Arc<dyn SiteTransport + Sync>,
    export_obs: bool,
    obs: &Obs,
) {
    use crossbeam::channel::{unbounded, Sender};
    let mut workers: HashMap<u32, (Sender<skalla_net::Message>, std::thread::JoinHandle<()>)> =
        HashMap::new();
    let site = net.site_id();
    let busy: Arc<QueryBusyTimes> = Arc::new(QueryBusyTimes::new(Vec::new()));
    let mut cursor = skalla_obs::ExportCursor::default();
    let obs_delta = |cursor: &mut skalla_obs::ExportCursor| {
        if export_obs {
            obs.recorder().map(|rec| rec.take_delta(cursor))
        } else {
            None
        }
    };
    // The loop ends when the coordinator hangs up (or the session idles
    // out) — recv errors — or broadcasts a shutdown.
    while let Ok(msg) = net.recv() {
        match msg.tag {
            protocol::TAG_SHUTDOWN => break,
            protocol::TAG_QUERY_DONE => {
                if let Some((tx, handle)) = workers.remove(&msg.query_id) {
                    drop(tx); // worker drains its queue and exits
                    let _ = handle.join();
                }
                // Answer with this query's telemetry: its busy samples
                // (drained) and, for standalone sites, the obs delta.
                let mut drained = Vec::new();
                busy.lock().retain(|(qid, _site, stage, secs)| {
                    if *qid == msg.query_id {
                        drained.push((*qid, *stage as u32, *secs));
                        false
                    } else {
                        true
                    }
                });
                let report = protocol::SiteTelemetry {
                    busy: drained,
                    obs: obs_delta(&mut cursor),
                };
                if net
                    .send(protocol::telemetry(&report).with_query_id(msg.query_id))
                    .is_err()
                {
                    break;
                }
            }
            protocol::TAG_TELEMETRY => {
                // A pull: snapshot without draining, echoing the
                // request's query id so a multiplexing coordinator can
                // route the reply to the puller.
                let snapshot = busy
                    .lock()
                    .iter()
                    .map(|(qid, _site, stage, secs)| (*qid, *stage as u32, *secs))
                    .collect();
                let report = protocol::SiteTelemetry {
                    busy: snapshot,
                    obs: obs_delta(&mut cursor),
                };
                if net
                    .send(protocol::telemetry(&report).with_query_id(msg.query_id))
                    .is_err()
                {
                    break;
                }
            }
            _ => {
                let query_id = msg.query_id;
                let (tx, _) = workers.entry(query_id).or_insert_with(|| {
                    let (tx, rx) = unbounded();
                    let catalog = catalog.clone();
                    let net = Arc::clone(&net);
                    let busy = Arc::clone(&busy);
                    let obs = obs.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("site-{site}-q{query_id}"))
                        .spawn(move || query_worker(&catalog, &*net, rx, query_id, busy, &obs))
                        .expect("spawning site query worker");
                    (tx, handle)
                });
                let _ = tx.send(msg);
            }
        }
    }
    for (tx, handle) in workers.into_values() {
        drop(tx);
        let _ = handle.join();
    }
}

/// One query's execution state and driver on a site: the per-query half
/// of [`site_session_loop`], mirroring [`site_loop`]'s protocol arms.
fn query_worker(
    catalog: &HashMap<String, Arc<Relation>>,
    net: &dyn SiteTransport,
    rx: crossbeam::channel::Receiver<skalla_net::Message>,
    query_id: u32,
    times: Arc<QueryBusyTimes>,
    obs: &Obs,
) {
    let site = net.site_id();
    let track = if query_id == 0 {
        Track::Site(site)
    } else {
        Track::SiteQuery(site, query_id)
    };
    let mut plan: Option<DistributedPlan> = None;
    let mut eval = EvalOptions::default();
    let mut chunk_rows: Option<usize> = None;
    let reply = |msg: skalla_net::Message| net.send(msg.with_query_id(query_id));
    while let Ok(msg) = rx.recv() {
        match msg.tag {
            protocol::TAG_PLAN => match crate::plan_codec::decode_plan_with_options(&msg.payload) {
                Ok((p, e, c)) => {
                    plan = Some(p);
                    eval = e;
                    chunk_rows = c;
                }
                Err(e) => {
                    let _ = reply(protocol::error(&format!("bad plan: {e}")));
                }
            },
            protocol::TAG_RUN_STAGE => {
                let Some(plan) = &plan else {
                    let _ = reply(protocol::error("stage task before plan"));
                    continue;
                };
                let replies = match protocol::decode_run_stage(&msg.payload) {
                    Ok((stage, fragment)) => {
                        let label = plan
                            .stages
                            .get(stage as usize)
                            .map(|s| s.label.as_str())
                            .unwrap_or("stage");
                        let mut task_span = obs.span(track, label);
                        if query_id != 0 {
                            task_span.arg("query_id", query_id as u64);
                        }
                        if let Some(f) = &fragment {
                            task_span.arg("rows_in", f.len());
                        }
                        let t = Instant::now();
                        let out = execute_stage_traced(
                            catalog,
                            plan,
                            stage as usize,
                            fragment,
                            eval,
                            obs,
                            site,
                        );
                        times
                            .lock()
                            .push((query_id, site, stage as usize, t.elapsed().as_secs_f64()));
                        match out {
                            Ok(rel) => {
                                task_span.arg("rows_out", rel.len());
                                task_span.finish();
                                chunked_results(stage, &rel, chunk_rows)
                            }
                            Err(e) => {
                                task_span.arg("error", e.to_string());
                                task_span.finish();
                                vec![protocol::error(&e.to_string())]
                            }
                        }
                    }
                    Err(e) => vec![protocol::error(&e.to_string())],
                };
                for r in replies {
                    if reply(r).is_err() {
                        return;
                    }
                }
            }
            _ => {
                let _ = reply(protocol::error("unexpected message tag"));
            }
        }
    }
}

/// Split a stage result into row-blocked RESULT messages (one final
/// message when chunking is off or the relation is small).
fn chunked_results(
    stage: u32,
    rel: &Relation,
    chunk_rows: Option<usize>,
) -> Vec<skalla_net::Message> {
    match chunk_rows {
        Some(chunk) if rel.len() > chunk => {
            let schema = rel.schema_ref();
            let chunks: Vec<&[skalla_relation::Row]> = rel.rows().chunks(chunk).collect();
            let n = chunks.len();
            chunks
                .into_iter()
                .enumerate()
                .map(|(i, rows)| {
                    let part = Relation::from_shared(Arc::clone(&schema), rows.to_vec());
                    protocol::result_chunk(stage, &part, i + 1 == n)
                })
                .collect()
        }
        _ => vec![protocol::result(stage, rel)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionInfo;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Schema};
    use std::collections::HashMap;

    fn site_catalog() -> HashMap<String, Relation> {
        let t = Relation::new(
            Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
            vec![row![1i64, 10i64], row![1i64, 30i64], row![2i64, 7i64]],
        )
        .unwrap();
        HashMap::from([("t".to_string(), t)])
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .build()
    }

    #[test]
    fn base_stage_ships_local_groups() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        let out = execute_stage(&cat, &plan, 0, None, EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().column_names(), ["g"]);
    }

    #[test]
    fn unit_stage_ships_key_plus_accumulators() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64], row![3i64]],
        )
        .unwrap();
        let out = execute_stage(&cat, &plan, 1, Some(b), EvalOptions::default()).unwrap();
        assert_eq!(
            out.schema().column_names(),
            ["g", "cnt", "avg__sum", "avg__cnt"]
        );
        assert_eq!(out.len(), 3);
        // Group 3 has no local tuples, but without site reduction it ships.
        assert_eq!(
            out.rows()[2],
            Row::new(vec![
                Value::Int(3),
                Value::Int(0),
                Value::Null,
                Value::Int(0),
            ])
        );
    }

    #[test]
    fn site_reduce_drops_unmatched_groups() {
        let flags = OptFlags {
            group_reduction_site: true,
            ..OptFlags::none()
        };
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), flags);
        let cat = site_catalog();
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![3i64]],
        )
        .unwrap();
        let out = execute_stage(&cat, &plan, 1, Some(b), EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].get(0), &Value::Int(1));
    }

    #[test]
    fn missing_fragment_is_an_error() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        assert!(execute_stage(&cat, &plan, 1, None, EvalOptions::default()).is_err());
        assert!(execute_stage(&cat, &plan, 9, None, EvalOptions::default()).is_err());
    }
}
