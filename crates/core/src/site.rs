//! Site-side stage execution and the site driver loop.
//!
//! Each Skalla site is a local warehouse fully capable of evaluating GMDJ
//! expressions over its partition (paper Sect. 2.1). [`execute_stage`] is
//! the pure function a site runs per round: given the shared plan, the
//! stage index and the base-structure fragment received from the
//! coordinator, it produces the relation to ship back. [`site_loop`]
//! wraps it in the protocol driver — receive plan, execute stage tasks,
//! reply, until shutdown — over any [`SiteTransport`], so the same loop
//! serves both an in-process site thread and a standalone TCP site
//! process (`skalla-cli site`).

use crate::plan::{DistributedPlan, StageKind, Unit};
use crate::protocol;
use crate::skew::{skew_eligible, ExtractSpec, HotReport, SkewSpec, REPORT_TOP, SKETCH_CAPACITY};
use parking_lot::Mutex;
use skalla_gmdj::eval::{eval_local_traced, finalize_physical, EvalOptions};
use skalla_gmdj::{BaseQuery, Catalog, SpaceSaving};
use skalla_net::SiteTransport;
use skalla_obs::{BusyTimer, Obs, Track};
use skalla_relation::{Error, Relation, Result, Row, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Execute one stage at a site. `incoming` is the base fragment shipped by
/// the coordinator (`None` for base stages and folded units).
pub fn execute_stage(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: usize,
    incoming: Option<Relation>,
    eval: EvalOptions,
) -> Result<Relation> {
    execute_stage_traced(catalog, plan, stage, incoming, eval, &Obs::disabled(), 0)
}

/// [`execute_stage`] with observability: the GMDJ kernel records
/// per-morsel spans on this site's worker tracks.
#[allow(clippy::too_many_arguments)]
pub fn execute_stage_traced(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: usize,
    incoming: Option<Relation>,
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Relation> {
    let st = plan
        .stages
        .get(stage)
        .ok_or_else(|| Error::Execution(format!("no stage {stage}")))?;
    match &st.kind {
        StageKind::Base => plan.base_fragment(catalog),
        StageKind::Unit(unit) => execute_unit(catalog, plan, unit, incoming, eval, obs, site),
    }
}

impl DistributedPlan {
    /// The local base fragment: the base query evaluated over this site's
    /// partition.
    pub fn base_fragment(&self, catalog: &dyn Catalog) -> Result<Relation> {
        self.expr.base.eval(catalog)
    }
}

fn base_input(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    unit: &Unit,
    incoming: Option<Relation>,
) -> Result<Relation> {
    if unit.fold_base {
        // Prop 2: derive the local groups from the local detail partition.
        match &plan.expr.base {
            BaseQuery::DistinctProject { .. } => plan.base_fragment(catalog),
            BaseQuery::Literal(_) => {
                Err(Error::Plan("fold_base with a literal base relation".into()))
            }
        }
    } else {
        incoming.ok_or_else(|| Error::Execution("unit stage without a base fragment".into()))
    }
}

fn execute_unit(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    unit: &Unit,
    incoming: Option<Relation>,
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Relation> {
    let detail = catalog.table(&unit.table)?;
    let b_frag = base_input(catalog, plan, unit, incoming)?;
    let key: Vec<&str> = plan.key.iter().map(String::as_str).collect();

    if unit.local_chain {
        // Thm 5 / Cor 1: evaluate the whole unit locally on owned groups,
        // finalizing between operators, and ship logical results.
        let owned = if unit.fold_base {
            b_frag
        } else {
            let (bcol, dcol) = unit
                .ownership
                .as_ref()
                .ok_or_else(|| Error::Plan("chained unit without ownership".into()))?;
            let local_values: HashSet<Value> = {
                let di = detail.schema().index_of(dcol)?;
                detail.iter().map(|r| r.get(di).clone()).collect()
            };
            let bi = b_frag.schema().index_of(bcol)?;
            b_frag.filter(|row| local_values.contains(row.get(bi)))
        };
        let mut cur = owned;
        for op in &plan.expr.ops[unit.ops.clone()] {
            let local = eval_local_traced(&cur, detail, op, eval, obs, site)?;
            cur = finalize_physical(&local.physical, cur.schema().len(), op, detail.schema())?;
        }
        // Ship K + every logical aggregate the unit produced.
        let mut cols = key.clone();
        for op in &plan.expr.ops[unit.ops.clone()] {
            cols.extend(op.output_names());
        }
        cur.project(&cols)
    } else {
        // One operator: sub-aggregates, shipped as physical accumulators.
        debug_assert_eq!(unit.ops.len(), 1);
        let op = &plan.expr.ops[unit.ops.start];
        let local = eval_local_traced(&b_frag, detail, op, eval, obs, site)?;
        let shipped = if unit.site_reduce {
            local.reduced()
        } else {
            local.physical
        };
        ship_projection(&shipped, &key, b_frag.schema().len())
    }
}

/// Project a unit's evaluated relation to K + the physical accumulator
/// columns — the shape every sub-aggregate ships in, whether it comes
/// from a regular stage task or a loan task.
fn ship_projection(shipped: &Relation, key: &[&str], base_arity: usize) -> Result<Relation> {
    let mut idx: Vec<usize> = Vec::with_capacity(key.len());
    for k in key {
        idx.push(shipped.schema().index_of(k)?);
    }
    idx.extend(base_arity..shipped.schema().len());
    let schema = shipped.schema().project(&idx)?;
    let rows = shipped.iter().map(|r| r.project(&idx)).collect();
    Relation::new(schema, rows)
}

/// Target number of rows the sketch pass actually scans. Larger
/// partitions are stride-sampled with the estimated counts scaled back
/// up by the stride — safe because the report is a load-balancing hint
/// only (routing from a noisier sample still yields bit-identical
/// results), and it caps the donor-side detection cost at a constant.
const SKETCH_SAMPLE_TARGET: usize = 16_384;

/// One space-saving pass over the local detail partition's key columns:
/// the site's half of skew detection. Runs once per query, right after
/// the base round, when the plan is skew-eligible and balancing is on.
pub fn hot_report(catalog: &dyn Catalog, spec: &SkewSpec) -> Result<HotReport> {
    let detail = catalog.table(&spec.table)?;
    let mut idx = Vec::with_capacity(spec.detail_cols.len());
    for c in &spec.detail_cols {
        idx.push(detail.schema().index_of(c)?);
    }
    let stride = (detail.len() / SKETCH_SAMPLE_TARGET).max(1);
    let mut sketch = SpaceSaving::new(SKETCH_CAPACITY);
    let mut key: Vec<&Value> = Vec::with_capacity(idx.len());
    for row in detail.iter().step_by(stride) {
        key.clear();
        key.extend(idx.iter().map(|&i| row.get(i)));
        sketch.offer(&key);
    }
    Ok(HotReport {
        rows: detail.len() as u64,
        hitters: sketch
            .top(REPORT_TOP)
            .into_iter()
            .map(|(k, c)| (k, c * stride as u64))
            .collect(),
    })
}

/// Split a detail relation into its hot-key and cold-key rows, both
/// bucketed by morsel segment (`position / morsel_rows`), preserving row
/// order within each bucket. Evaluating one bucket as a single morsel
/// reproduces, bit for bit, the per-morsel accumulator state the donor
/// would have computed for those keys over the whole partition (the
/// eligibility check guarantees a detail row can only contribute to its
/// own key's group, so hot and cold rows never touch each other's
/// accumulators). The hot half is loaned to helpers; the donor folds the
/// cold half itself.
pub fn split_detail(
    detail: &Relation,
    spec: &ExtractSpec,
    morsel_rows: usize,
) -> Result<(protocol::Segments, protocol::Segments)> {
    let mut hot_buckets: Vec<(u32, Vec<Row>)> = Vec::new();
    let mut cold_buckets: Vec<(u32, Vec<Row>)> = Vec::new();
    let push = |buckets: &mut Vec<(u32, Vec<Row>)>, seg: u32, row: &Row| {
        match buckets.last_mut() {
            Some((s, rows)) if *s == seg => rows.push(row.clone()),
            _ => buckets.push((seg, vec![row.clone()])),
        }
    };
    split_scan(
        detail,
        spec,
        morsel_rows,
        |seg, row| push(&mut hot_buckets, seg, row),
        |seg, row| push(&mut cold_buckets, seg, row),
    )?;
    let pack = |buckets: Vec<(u32, Vec<Row>)>| {
        buckets
            .into_iter()
            .map(|(seg, rows)| (seg, Relation::from_shared(detail.schema_ref(), rows)))
            .collect()
    };
    Ok((pack(hot_buckets), pack(cold_buckets)))
}

/// One in-order pass over a detail relation, routing each row — with its
/// morsel segment `position / morsel_rows` — to the `hot` or `cold`
/// sink. The sinks see rows in ascending segment order and in row order
/// within a segment, which is what every consumer relies on for
/// bit-identical reconstruction.
fn split_scan(
    detail: &Relation,
    spec: &ExtractSpec,
    morsel_rows: usize,
    mut hot_sink: impl FnMut(u32, &Row),
    mut cold_sink: impl FnMut(u32, &Row),
) -> Result<()> {
    let mut idx = Vec::with_capacity(spec.detail_cols.len());
    for c in &spec.detail_cols {
        idx.push(detail.schema().index_of(c)?);
    }
    let m = morsel_rows.max(1);
    if let [i] = idx[..] {
        // Single-column key (the common case): probe the borrowed value
        // directly, no per-row key buffer.
        let hot: HashSet<&Value> = spec.keys.iter().filter_map(|k| k.first()).collect();
        for (pos, row) in detail.iter().enumerate() {
            let seg = (pos / m) as u32;
            if hot.contains(row.get(i)) {
                hot_sink(seg, row);
            } else {
                cold_sink(seg, row);
            }
        }
    } else {
        let hot: HashSet<&Vec<Value>> = spec.keys.iter().collect();
        let mut key = Vec::with_capacity(idx.len());
        for (pos, row) in detail.iter().enumerate() {
            key.clear();
            key.extend(idx.iter().map(|&i| row.get(i).clone()));
            let seg = (pos / m) as u32;
            if hot.contains(&key) {
                hot_sink(seg, row);
            } else {
                cold_sink(seg, row);
            }
        }
    }
    Ok(())
}

/// [`split_detail`] specialized for the donor's own use: the hot half is
/// serialized straight into `LOAN`-frame bytes as the scan runs (hot
/// rows — the bulk of a donor's partition — are never cloned), and only
/// the cold half is materialized for local evaluation.
fn split_for_loan(
    detail: &Relation,
    spec: &ExtractSpec,
    morsel_rows: usize,
) -> Result<(Vec<u8>, protocol::Segments)> {
    let mut loan = protocol::LoanSegmentsBuilder::new(detail.schema_ref());
    let mut cold_buckets: Vec<(u32, Vec<Row>)> = Vec::new();
    split_scan(
        detail,
        spec,
        morsel_rows,
        |seg, row| loan.push(seg, row),
        |seg, row| match cold_buckets.last_mut() {
            Some((s, rows)) if *s == seg => rows.push(row.clone()),
            _ => cold_buckets.push((seg, vec![row.clone()])),
        },
    )?;
    let cold = cold_buckets
        .into_iter()
        .map(|(seg, rows)| (seg, Relation::from_shared(detail.schema_ref(), rows)))
        .collect();
    Ok((loan.finish(), cold))
}

/// Pull only the hot-key detail segments out of a detail relation — the
/// loanable half of [`split_detail`].
pub fn extract_segments(
    detail: &Relation,
    spec: &ExtractSpec,
    morsel_rows: usize,
) -> Result<Vec<(u32, Relation)>> {
    Ok(split_detail(detail, spec, morsel_rows)?.0)
}

/// A donor's cached detail split: the table, extract spec and morsel
/// size that produced it, the hot half already wire-encoded (the loan
/// frame body is identical for every stage), and the cold segments the
/// donor folds itself.
struct SplitCache {
    table: String,
    spec: ExtractSpec,
    morsel_rows: usize,
    hot_encoded: Vec<u8>,
    cold: Vec<(u32, Relation)>,
}

/// Per-site caches of skew-balancing artifacts derived purely from the
/// immutable site catalog: the heavy-hitter report (keyed by its
/// [`SkewSpec`]) and the donor's hot/cold detail split (keyed by table,
/// [`ExtractSpec`] and morsel size). A site's catalog never changes, so
/// both survive plan broadcasts — the coordinator sends the same spec
/// for every eligible stage of a query, and repeated or concurrent
/// queries over the same table reuse one detection pass and one split
/// scan (mirroring how the columnar kernel's per-relation column cache
/// already amortizes across queries).
#[derive(Default)]
struct SkewCaches {
    report: Option<(SkewSpec, HotReport)>,
    split: Option<SplitCache>,
}

/// The donor side of a rebalanced stage task. Splits the detail into
/// hot and cold segments (cached across stages), ships the hot segments
/// to the coordinator *immediately* via `send_early` — so helpers start
/// their loaned work while the donor is still computing — and then folds
/// only the cold segments, merging the per-segment sub-aggregates in
/// segment order. The result is bit-identical to evaluating the full
/// partition against the reduced fragment: hot rows cannot match any of
/// the remaining base rows, so skipping them removes pure probe misses
/// without touching a single accumulator.
#[allow(clippy::too_many_arguments)]
fn donor_stage(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: u32,
    fragment: Option<Relation>,
    spec: &ExtractSpec,
    caches: &mut SkewCaches,
    send_early: &mut dyn FnMut(skalla_net::Message),
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Relation> {
    let st = plan
        .stages
        .get(stage as usize)
        .ok_or_else(|| Error::Execution(format!("no stage {stage}")))?;
    let StageKind::Unit(unit) = &st.kind else {
        return Err(Error::Execution("extract request on a non-unit stage".into()));
    };
    if unit.fold_base || unit.local_chain {
        return Err(Error::Execution("extract request on a folded/chained unit".into()));
    }
    let detail = catalog.table(&unit.table)?;
    if !caches.split.as_ref().is_some_and(|c| {
        c.table == unit.table && c.spec == *spec && c.morsel_rows == eval.morsel_rows
    }) {
        let (hot_encoded, cold) = split_for_loan(detail, spec, eval.morsel_rows)?;
        caches.split = Some(SplitCache {
            table: unit.table.clone(),
            spec: spec.clone(),
            morsel_rows: eval.morsel_rows,
            hot_encoded,
            cold,
        });
    }
    let cached = caches.split.as_ref().expect("split cache just filled");
    let cold = &cached.cold;
    send_early(protocol::loan_from_encoded(stage, &cached.hot_encoded));

    let b_frag = base_input(catalog, plan, unit, fragment)?;
    let op = &plan.expr.ops[unit.ops.start];
    let key: Vec<&str> = plan.key.iter().map(String::as_str).collect();
    let ship = |part: &Relation| -> Result<Relation> {
        let local = eval_local_traced(&b_frag, part, op, eval, obs, site)?;
        let shipped = if unit.site_reduce {
            local.reduced()
        } else {
            local.physical
        };
        ship_projection(&shipped, &key, b_frag.schema().len())
    };
    match cold.as_slice() {
        // Everything was hot: still evaluate, so every remaining base
        // group ships its initial accumulator state.
        [] => ship(&Relation::from_shared(detail.schema_ref(), Vec::new())),
        [(_, only)] => ship(only),
        segs => {
            let mut pm = crate::coordinator::PartialMerge::new(plan.key.len(), op);
            let mut schema = None;
            for (_, part) in segs {
                let rel = ship(part)?;
                schema.get_or_insert_with(|| rel.schema_ref());
                pm.absorb(&rel)?;
            }
            Ok(pm.into_relation(schema.expect("at least two cold segments")))
        }
    }
}

/// The helper side of a rebalanced stage: evaluate each loaned detail
/// segment (one morsel each — segments never exceed the donor's morsel
/// size) against the donor's hot base rows, and ship the per-segment
/// sub-aggregates back for in-order reconstruction at the coordinator.
pub fn execute_loan(
    plan: &DistributedPlan,
    stage: usize,
    base: &Relation,
    segments: &[(u32, Relation)],
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<Vec<(u32, Relation)>> {
    let st = plan
        .stages
        .get(stage)
        .ok_or_else(|| Error::Execution(format!("no stage {stage}")))?;
    let StageKind::Unit(unit) = &st.kind else {
        return Err(Error::Execution("loan task on a non-unit stage".into()));
    };
    if unit.fold_base || unit.local_chain {
        return Err(Error::Execution("loan task on a folded/chained unit".into()));
    }
    let op = &plan.expr.ops[unit.ops.start];
    let key: Vec<&str> = plan.key.iter().map(String::as_str).collect();
    let mut out = Vec::with_capacity(segments.len());
    for (seg, detail) in segments {
        let local = eval_local_traced(base, detail, op, eval, obs, site)?;
        let shipped = if unit.site_reduce {
            local.reduced()
        } else {
            local.physical
        };
        out.push((*seg, ship_projection(&shipped, &key, base.schema().len())?));
    }
    Ok(out)
}

/// Shared collector for `(site, stage, busy seconds)` samples reported by
/// in-process site threads.
pub type BusyTimes = Mutex<Vec<(usize, usize, f64)>>;

/// The per-site worker loop: receive the plan (which carries the kernel's
/// evaluation options and the row-blocking chunk size), then wait for
/// stage tasks, execute, reply — until a shutdown message or the link
/// dies. `times` (when given) collects `(site, stage, busy seconds)`
/// samples; the in-process [`crate::Cluster`] feeds them into
/// [`crate::stats::StageTimes`], while a serial remote session has no
/// accounting-exempt way to report them (a serial coordinator never
/// sends the `QUERY_DONE` that triggers a telemetry reply in
/// [`site_session_loop`]), so a standalone site passes `None`.
pub fn site_loop(
    catalog: &HashMap<String, Arc<Relation>>,
    net: &dyn SiteTransport,
    times: Option<&BusyTimes>,
    obs: &Obs,
) {
    let mut plan: Option<DistributedPlan> = None;
    let mut eval = EvalOptions::default();
    let mut chunk_rows: Option<usize> = None;
    let mut caches = SkewCaches::default();
    loop {
        let Ok(msg) = net.recv() else {
            return; // coordinator hung up (or the link timed out)
        };
        match msg.tag {
            protocol::TAG_SHUTDOWN => return,
            protocol::TAG_PLAN => match crate::plan_codec::decode_plan_with_options(&msg.payload) {
                Ok((p, e, c)) => {
                    plan = Some(p);
                    eval = e;
                    chunk_rows = c;
                }
                Err(e) => {
                    let _ = net.send(protocol::error(&format!("bad plan: {e}")));
                }
            },
            protocol::TAG_RUN_STAGE => {
                let Some(plan) = &plan else {
                    let _ = net.send(protocol::error("stage task before plan"));
                    continue;
                };
                let replies = match protocol::decode_run_stage(&msg.payload) {
                    Ok((stage, fragment, extract)) => {
                        let label = plan
                            .stages
                            .get(stage as usize)
                            .map(|s| s.label.as_str())
                            .unwrap_or("stage");
                        let mut task_span = obs.span(Track::Site(net.site_id()), label);
                        if let Some(f) = &fragment {
                            task_span.arg("rows_in", f.len());
                        }
                        let t = BusyTimer::start();
                        let out = run_stage_task(
                            catalog,
                            plan,
                            stage,
                            fragment,
                            extract.as_ref(),
                            &mut caches,
                            &mut |m| {
                                let _ = net.send(m);
                            },
                            eval,
                            obs,
                            net.site_id(),
                        );
                        if let Some(times) = times {
                            times.lock().push((
                                net.site_id(),
                                stage as usize,
                                t.elapsed_s(),
                            ));
                        }
                        match out {
                            Ok((mut msgs, rel)) => {
                                task_span.arg("rows_out", rel.len());
                                task_span.finish();
                                msgs.extend(chunked_results(stage, &rel, chunk_rows));
                                msgs
                            }
                            Err(e) => {
                                task_span.arg("error", e.to_string());
                                task_span.finish();
                                vec![protocol::error(&e.to_string())]
                            }
                        }
                    }
                    Err(e) => vec![protocol::error(&e.to_string())],
                };
                for reply in replies {
                    if net.send(reply).is_err() {
                        return;
                    }
                }
            }
            protocol::TAG_LOAN_TASK => {
                let Some(plan) = &plan else {
                    let _ = net.send(protocol::error("loan task before plan"));
                    continue;
                };
                let replies = loan_task_replies(
                    plan,
                    &msg.payload,
                    eval,
                    obs,
                    Track::Site(net.site_id()),
                    net.site_id(),
                    |stage, secs| {
                        if let Some(times) = times {
                            times.lock().push((net.site_id(), stage, secs));
                        }
                    },
                );
                for reply in replies {
                    if net.send(reply).is_err() {
                        return;
                    }
                }
            }
            _ => {
                let _ = net.send(protocol::error("unexpected message tag"));
            }
        }
    }
}

/// One stage task's site-side work: the donor path when the coordinator
/// asked for an extract (hot segments loaned eagerly through
/// `send_early`, cold segments folded locally), the plain stage
/// evaluation otherwise, plus the heavy-hitter report after an eligible
/// base round. Returns the extra protocol frames to send ahead of the
/// row-blocked RESULT chunks.
#[allow(clippy::too_many_arguments)]
fn run_stage_task(
    catalog: &dyn Catalog,
    plan: &DistributedPlan,
    stage: u32,
    fragment: Option<Relation>,
    extract: Option<&ExtractSpec>,
    caches: &mut SkewCaches,
    send_early: &mut dyn FnMut(skalla_net::Message),
    eval: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<(Vec<skalla_net::Message>, Relation)> {
    if let Some(spec) = extract {
        let rel = donor_stage(
            catalog, plan, stage, fragment, spec, caches, send_early, eval, obs, site,
        )?;
        return Ok((Vec::new(), rel));
    }
    let mut msgs = Vec::new();
    let rel = execute_stage_traced(catalog, plan, stage as usize, fragment, eval, obs, site)?;
    let is_base = matches!(
        plan.stages.get(stage as usize).map(|s| &s.kind),
        Some(StageKind::Base)
    );
    if is_base && eval.skew_balance {
        if let Some(spec) = skew_eligible(plan) {
            if !caches.report.as_ref().is_some_and(|(s, _)| *s == spec) {
                let report = hot_report(catalog, &spec)?;
                caches.report = Some((spec.clone(), report));
            }
            let (_, report) = caches.report.as_ref().expect("report cache just filled");
            msgs.push(protocol::hh_report(stage, report));
        }
    }
    Ok((msgs, rel))
}

/// Decode and execute a `LOAN_TASK` frame, reporting the busy time via
/// `record` — shared by the serial [`site_loop`] and the per-query
/// [`query_worker`], which stamp samples differently.
fn loan_task_replies(
    plan: &DistributedPlan,
    payload: &[u8],
    eval: EvalOptions,
    obs: &Obs,
    track: Track,
    site: usize,
    record: impl FnOnce(usize, f64),
) -> Vec<skalla_net::Message> {
    match protocol::decode_loan_task(payload) {
        Ok((stage, donor, base, segments)) => {
            let mut span = obs.span(track, "loan");
            span.arg("donor", donor as u64);
            span.arg("segments", segments.len());
            let t = BusyTimer::start();
            let out = execute_loan(plan, stage as usize, &base, &segments, eval, obs, site);
            record(stage as usize, t.elapsed_s());
            match out {
                Ok(segs) => {
                    span.finish();
                    vec![protocol::loan_result(stage, donor, &segs)]
                }
                Err(e) => {
                    span.arg("error", e.to_string());
                    span.finish();
                    vec![protocol::error(&e.to_string())]
                }
            }
        }
        Err(e) => vec![protocol::error(&e.to_string())],
    }
}

/// Shared collector for `(query_id, site, stage, busy seconds)` samples
/// reported by per-query site workers under the concurrent engine.
pub type QueryBusyTimes = Mutex<Vec<(u32, usize, usize, f64)>>;

/// The multi-query session loop: a demultiplexer that routes frames to
/// per-query workers keyed by [`skalla_net::Message::query_id`].
///
/// Each worker owns one query's state — the decoded plan, its evaluation
/// options, its row-blocking chunk size — exactly the state [`site_loop`]
/// keeps for its single query, so concurrent queries interleave on the
/// site without sharing mutable state. Worker replies are stamped with
/// the worker's query id and serialized by the transport (one frame per
/// `send`), so interleaved queries never corrupt each other's streams.
///
/// Control flow on the session (query id 0) stream:
/// * [`protocol::TAG_QUERY_DONE`] retires the frame's query worker and
///   answers with a [`protocol::TAG_TELEMETRY`] frame carrying that
///   query's busy-time samples (and, when `export_obs` is set, the site
///   recorder's delta since the last export);
/// * [`protocol::TAG_TELEMETRY`] is a pull: the site replies — echoing
///   the request's query id, so a multiplexing coordinator can route the
///   answer — with a snapshot of all pending busy samples plus the obs
///   delta, without retiring anything;
/// * [`protocol::TAG_SHUTDOWN`] ends the session: all workers are joined
///   and the loop returns;
/// * a dead link also ends the session.
///
/// Telemetry frames ride [`skalla_net::TELEMETRY_TAG`] and are exempt
/// from the byte accounting on every transport, so shipping timings no
/// longer breaks the channel/TCP byte-identity invariant (the reason the
/// serial [`site_loop`] cannot report remote busy times).
///
/// `export_obs` should be `true` only when this site owns its recorder
/// (a standalone `skalla-cli site` process): an in-process site thread
/// shares the coordinator's recorder, and exporting from it would
/// duplicate every span on import.
///
/// The legacy serial coordinator (every frame on query id 0) works
/// unchanged: its frames all route to worker 0, and it never sends
/// `QUERY_DONE`, so no telemetry is emitted.
pub fn site_session_loop(
    catalog: &HashMap<String, Arc<Relation>>,
    net: Arc<dyn SiteTransport + Sync>,
    export_obs: bool,
    obs: &Obs,
) {
    use crossbeam::channel::{unbounded, Sender};
    let mut workers: HashMap<u32, (Sender<skalla_net::Message>, std::thread::JoinHandle<()>)> =
        HashMap::new();
    let site = net.site_id();
    let busy: Arc<QueryBusyTimes> = Arc::new(QueryBusyTimes::new(Vec::new()));
    let mut cursor = skalla_obs::ExportCursor::default();
    let obs_delta = |cursor: &mut skalla_obs::ExportCursor| {
        if export_obs {
            obs.recorder().map(|rec| rec.take_delta(cursor))
        } else {
            None
        }
    };
    // The loop ends when the coordinator hangs up (or the session idles
    // out) — recv errors — or broadcasts a shutdown.
    while let Ok(msg) = net.recv() {
        match msg.tag {
            protocol::TAG_SHUTDOWN => break,
            protocol::TAG_QUERY_DONE => {
                if let Some((tx, handle)) = workers.remove(&msg.query_id) {
                    drop(tx); // worker drains its queue and exits
                    let _ = handle.join();
                }
                // Answer with this query's telemetry: its busy samples
                // (drained) and, for standalone sites, the obs delta.
                let mut drained = Vec::new();
                busy.lock().retain(|(qid, _site, stage, secs)| {
                    if *qid == msg.query_id {
                        drained.push((*qid, *stage as u32, *secs));
                        false
                    } else {
                        true
                    }
                });
                let report = protocol::SiteTelemetry {
                    busy: drained,
                    obs: obs_delta(&mut cursor),
                };
                if net
                    .send(protocol::telemetry(&report).with_query_id(msg.query_id))
                    .is_err()
                {
                    break;
                }
            }
            protocol::TAG_TELEMETRY => {
                // A pull: snapshot without draining, echoing the
                // request's query id so a multiplexing coordinator can
                // route the reply to the puller.
                let snapshot = busy
                    .lock()
                    .iter()
                    .map(|(qid, _site, stage, secs)| (*qid, *stage as u32, *secs))
                    .collect();
                let report = protocol::SiteTelemetry {
                    busy: snapshot,
                    obs: obs_delta(&mut cursor),
                };
                if net
                    .send(protocol::telemetry(&report).with_query_id(msg.query_id))
                    .is_err()
                {
                    break;
                }
            }
            _ => {
                let query_id = msg.query_id;
                let (tx, _) = workers.entry(query_id).or_insert_with(|| {
                    let (tx, rx) = unbounded();
                    let catalog = catalog.clone();
                    let net = Arc::clone(&net);
                    let busy = Arc::clone(&busy);
                    let obs = obs.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("site-{site}-q{query_id}"))
                        .spawn(move || query_worker(&catalog, &*net, rx, query_id, busy, &obs))
                        .expect("spawning site query worker");
                    (tx, handle)
                });
                let _ = tx.send(msg);
            }
        }
    }
    // lint: allow(unordered-iter) shutdown join order — every worker is joined, nothing is encoded
    for (tx, handle) in workers.into_values() {
        drop(tx);
        let _ = handle.join();
    }
}

/// One query's execution state and driver on a site: the per-query half
/// of [`site_session_loop`], mirroring [`site_loop`]'s protocol arms.
fn query_worker(
    catalog: &HashMap<String, Arc<Relation>>,
    net: &dyn SiteTransport,
    rx: crossbeam::channel::Receiver<skalla_net::Message>,
    query_id: u32,
    times: Arc<QueryBusyTimes>,
    obs: &Obs,
) {
    let site = net.site_id();
    let track = if query_id == 0 {
        Track::Site(site)
    } else {
        Track::SiteQuery(site, query_id)
    };
    let mut plan: Option<DistributedPlan> = None;
    let mut eval = EvalOptions::default();
    let mut chunk_rows: Option<usize> = None;
    let mut caches = SkewCaches::default();
    let reply = |msg: skalla_net::Message| net.send(msg.with_query_id(query_id));
    while let Ok(msg) = rx.recv() {
        match msg.tag {
            protocol::TAG_PLAN => match crate::plan_codec::decode_plan_with_options(&msg.payload) {
                Ok((p, e, c)) => {
                    plan = Some(p);
                    eval = e;
                    chunk_rows = c;
                }
                Err(e) => {
                    let _ = reply(protocol::error(&format!("bad plan: {e}")));
                }
            },
            protocol::TAG_RUN_STAGE => {
                let Some(plan) = &plan else {
                    let _ = reply(protocol::error("stage task before plan"));
                    continue;
                };
                let replies = match protocol::decode_run_stage(&msg.payload) {
                    Ok((stage, fragment, extract)) => {
                        let label = plan
                            .stages
                            .get(stage as usize)
                            .map(|s| s.label.as_str())
                            .unwrap_or("stage");
                        let mut task_span = obs.span(track, label);
                        if query_id != 0 {
                            task_span.arg("query_id", query_id as u64);
                        }
                        if let Some(f) = &fragment {
                            task_span.arg("rows_in", f.len());
                        }
                        let t = BusyTimer::start();
                        let out = run_stage_task(
                            catalog,
                            plan,
                            stage,
                            fragment,
                            extract.as_ref(),
                            &mut caches,
                            &mut |m| {
                                let _ = reply(m);
                            },
                            eval,
                            obs,
                            site,
                        );
                        times
                            .lock()
                            .push((query_id, site, stage as usize, t.elapsed_s()));
                        match out {
                            Ok((mut msgs, rel)) => {
                                task_span.arg("rows_out", rel.len());
                                task_span.finish();
                                msgs.extend(chunked_results(stage, &rel, chunk_rows));
                                msgs
                            }
                            Err(e) => {
                                task_span.arg("error", e.to_string());
                                task_span.finish();
                                vec![protocol::error(&e.to_string())]
                            }
                        }
                    }
                    Err(e) => vec![protocol::error(&e.to_string())],
                };
                for r in replies {
                    if reply(r).is_err() {
                        return;
                    }
                }
            }
            protocol::TAG_LOAN_TASK => {
                let Some(plan) = &plan else {
                    let _ = reply(protocol::error("loan task before plan"));
                    continue;
                };
                let replies =
                    loan_task_replies(plan, &msg.payload, eval, obs, track, site, |stage, secs| {
                        times.lock().push((query_id, site, stage, secs));
                    });
                for r in replies {
                    if reply(r).is_err() {
                        return;
                    }
                }
            }
            _ => {
                let _ = reply(protocol::error("unexpected message tag"));
            }
        }
    }
}

/// Split a stage result into row-blocked RESULT messages (one final
/// message when chunking is off or the relation is small).
fn chunked_results(
    stage: u32,
    rel: &Relation,
    chunk_rows: Option<usize>,
) -> Vec<skalla_net::Message> {
    match chunk_rows {
        Some(chunk) if rel.len() > chunk => {
            let schema = rel.schema_ref();
            let chunks: Vec<&[skalla_relation::Row]> = rel.rows().chunks(chunk).collect();
            let n = chunks.len();
            chunks
                .into_iter()
                .enumerate()
                .map(|(i, rows)| {
                    let part = Relation::from_shared(Arc::clone(&schema), rows.to_vec());
                    protocol::result_chunk(stage, &part, i + 1 == n)
                })
                .collect()
        }
        _ => vec![protocol::result(stage, rel)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionInfo;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Schema};
    use std::collections::HashMap;

    fn site_catalog() -> HashMap<String, Relation> {
        let t = Relation::new(
            Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
            vec![row![1i64, 10i64], row![1i64, 30i64], row![2i64, 7i64]],
        )
        .unwrap();
        HashMap::from([("t".to_string(), t)])
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .build()
    }

    #[test]
    fn base_stage_ships_local_groups() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        let out = execute_stage(&cat, &plan, 0, None, EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().column_names(), ["g"]);
    }

    #[test]
    fn unit_stage_ships_key_plus_accumulators() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64], row![3i64]],
        )
        .unwrap();
        let out = execute_stage(&cat, &plan, 1, Some(b), EvalOptions::default()).unwrap();
        assert_eq!(
            out.schema().column_names(),
            ["g", "cnt", "avg__sum", "avg__cnt"]
        );
        assert_eq!(out.len(), 3);
        // Group 3 has no local tuples, but without site reduction it ships.
        assert_eq!(
            out.rows()[2],
            Row::new(vec![
                Value::Int(3),
                Value::Int(0),
                Value::Null,
                Value::Int(0),
            ])
        );
    }

    #[test]
    fn site_reduce_drops_unmatched_groups() {
        let flags = OptFlags {
            group_reduction_site: true,
            ..OptFlags::none()
        };
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), flags);
        let cat = site_catalog();
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![3i64]],
        )
        .unwrap();
        let out = execute_stage(&cat, &plan, 1, Some(b), EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].get(0), &Value::Int(1));
    }

    #[test]
    fn missing_fragment_is_an_error() {
        let plan = Planner::new(DistributionInfo::new(1)).optimize(&expr(), OptFlags::none());
        let cat = site_catalog();
        assert!(execute_stage(&cat, &plan, 1, None, EvalOptions::default()).is_err());
        assert!(execute_stage(&cat, &plan, 9, None, EvalOptions::default()).is_err());
    }
}
