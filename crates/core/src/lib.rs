//! # skalla-core — the Skalla distributed OLAP engine
//!
//! The paper's contribution: distributed evaluation of complex OLAP
//! queries (GMDJ expressions) over a coordinator + local-warehouse-sites
//! architecture, shipping only aggregate structures — never detail data.
//!
//! * [`cluster::Cluster`] — the in-process runtime: threaded sites,
//!   coordinator, Alg. GMDJDistribEval, and the ship-everything
//!   centralized baseline.
//! * [`remote::RemoteCluster`] / [`remote::SiteServer`] — the same
//!   coordinator algorithm over the TCP transport, for real
//!   multi-process clusters (`skalla-cli site` / `skalla-cli run
//!   --sites`).
//! * [`plan::Planner`] — the Egil planner: coalescing, distribution-aware
//!   and distribution-independent group reduction, synchronization
//!   reduction (Prop 2, Thm 5/Cor 1).
//! * [`distribution::DistributionInfo`] — per-site φ knowledge and
//!   partition-attribute detection (Definition 2).
//! * [`coordinator`] — the base-result structure and the Theorem 1
//!   synchronization.
//! * [`stats`] — per-round traffic/compute measurements and the simulated
//!   cost breakdown.
//! * [`cache`] — the semantic result cache: canonical plan fingerprints,
//!   partition epochs, prefix-snapshot reuse, and in-flight coalescing
//!   behind the [`warehouse::Warehouse`] API.

// missing_docs is denied workspace-wide (see [workspace.lints]).

pub mod cache;
pub mod cluster;
pub mod coordinator;
pub mod distribution;
pub mod plan;
pub mod plan_codec;
pub mod protocol;
pub mod remote;
pub mod scheduler;
pub mod site;
pub mod skew;
pub mod stats;
pub mod topology;
pub mod warehouse;

pub use cache::{plan_fingerprint, plan_fingerprints, CacheStats, Fingerprint, SemanticCache};
pub use cluster::Cluster;
pub use distribution::DistributionInfo;
pub use plan::{
    DistributedPlan, OptFlags, PlanDecision, Planner, SiteFilter, Stage, StageKind, Unit,
};
pub use plan_codec::{decode_plan, encode_plan};
pub use remote::{RemoteCluster, SiteServer};
pub use scheduler::{AdmissionError, QueryId, QueryScheduler, SchedulerConfig};
pub use skew::{plan_routing, skew_eligible, HotReport, SkewPlan, SkewSpec};
pub use stats::{ExecStats, QueryResult, RoundSummary, SimBreakdown, StageTimes};
pub use topology::{execute_tree, TreeQueryResult, TreeTopology};
pub use warehouse::{EngineConfig, SharedCatalog, Skalla, SkallaBuilder, Warehouse};
