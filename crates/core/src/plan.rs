//! Distributed evaluation plans and the Egil planner.
//!
//! A plan is a sequence of *stages*; each stage is one synchronization
//! round (Alg. GMDJDistribEval): the coordinator (possibly) ships the
//! base-result structure down, sites compute, results ship up and are
//! synchronized. The planner applies the paper's Sect. 4 optimizations:
//!
//! * **Coalescing** (Sect. 4.3): adjacent independent GMDJs merge, saving
//!   rounds *and* passes over the detail relation.
//! * **Distribution-aware group reduction** (Thm 4): per-site ¬ψ filters
//!   derived from φ via interval/set analysis shrink the shipped base
//!   fragments; sites whose φ contradicts every θ are skipped entirely
//!   (the S_MD ⊂ S_B case).
//! * **Distribution-independent group reduction** (Prop 1): sites return
//!   only groups with a non-empty local range.
//! * **Synchronization reduction** (Prop 2, Thm 5/Cor 1): the base
//!   computation folds into round 1 when every θ entails θ_K, and
//!   consecutive GMDJs whose θs all entail equality on a partition
//!   attribute chain *locally* at the sites with no intermediate
//!   synchronization.

use crate::distribution::DistributionInfo;
use skalla_gmdj::rewrite::coalesce_chain;
use skalla_gmdj::theta::analyze_theta;
use skalla_gmdj::{BaseQuery, GmdjExpr};
use skalla_obs::{Obs, Track};
use skalla_relation::{derive_base_constraint, BaseConstraint, Expr, Side};
use std::collections::HashSet;
use std::fmt;
use std::ops::Range;

/// Which optimizations the planner may apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// Coalesce adjacent independent GMDJs (Sect. 4.3).
    pub coalesce: bool,
    /// Distribution-independent (site-side) group reduction (Prop 1).
    pub group_reduction_site: bool,
    /// Distribution-aware (coordinator-side) group reduction (Thm 4).
    pub group_reduction_coord: bool,
    /// Synchronization reduction (Prop 2 and Thm 5 / Cor 1).
    pub sync_reduction: bool,
}

impl OptFlags {
    /// Everything on.
    pub fn all() -> OptFlags {
        OptFlags {
            coalesce: true,
            group_reduction_site: true,
            group_reduction_coord: true,
            sync_reduction: true,
        }
    }

    /// Everything off — the unoptimized Alg. GMDJDistribEval.
    pub fn none() -> OptFlags {
        OptFlags {
            coalesce: false,
            group_reduction_site: false,
            group_reduction_coord: false,
            sync_reduction: false,
        }
    }

    /// Only group reduction (both sides), as in the Fig. 2 experiment.
    pub fn group_reduction_only() -> OptFlags {
        OptFlags {
            coalesce: false,
            group_reduction_site: true,
            group_reduction_coord: true,
            sync_reduction: false,
        }
    }

    /// Only coalescing, as in the Fig. 3 experiment.
    pub fn coalesce_only() -> OptFlags {
        OptFlags {
            coalesce: true,
            group_reduction_site: false,
            group_reduction_coord: false,
            sync_reduction: false,
        }
    }

    /// Only synchronization reduction, as in the Fig. 4 experiment.
    pub fn sync_reduction_only() -> OptFlags {
        OptFlags {
            coalesce: false,
            group_reduction_site: false,
            group_reduction_coord: false,
            sync_reduction: true,
        }
    }
}

/// A structured record of one optimizer decision: which rewrite fired
/// (or was blocked) and why, with the paper reference. The planner
/// returns these from [`Planner::optimize_with_decisions`] and, when an
/// observability handle is attached, emits one optimizer-track event
/// per decision.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDecision {
    /// Sect. 4.3 coalescing merged adjacent independent GMDJs.
    Coalesced {
        /// Operator count before merging.
        ops_before: usize,
        /// Operator count after merging.
        ops_after: usize,
        /// Synchronization rounds saved.
        rounds_saved: usize,
    },
    /// Coalescing was enabled but found nothing to merge.
    CoalesceBlocked {
        /// Why no merge happened.
        reason: String,
    },
    /// Prop. 2: the base computation folded into round 1.
    FoldedBase {
        /// How the fold was proven safe.
        mechanism: String,
    },
    /// Prop. 2 fold considered but rejected.
    FoldBlocked {
        /// Why the fold is unsafe here.
        reason: String,
    },
    /// Thm. 5 / Cor. 1: a run of GMDJs chains locally at the sites with
    /// no intermediate synchronization.
    LocalChain {
        /// Stage label.
        stage: String,
        /// Operators in the chain (indexes into the expression).
        ops: Range<usize>,
        /// Base-side partition attribute proving group ownership.
        base_col: String,
        /// Detail-side partition attribute.
        detail_col: String,
    },
    /// Prop. 1: sites return only groups with a non-empty local range.
    SiteGroupReduction {
        /// Stage label.
        stage: String,
    },
    /// Prop. 1 would apply but is subsumed by a stronger rewrite.
    SiteGroupReductionSuppressed {
        /// Stage label.
        stage: String,
        /// Which rewrite subsumes it.
        reason: String,
    },
    /// Thm. 4: per-site ¬ψ filters restrict (or skip) shipped fragments.
    CoordGroupReduction {
        /// Stage label.
        stage: String,
        /// Sites receiving a restricted fragment.
        restricted: usize,
        /// Sites skipped entirely (φ contradicts every θ).
        skipped: usize,
    },
}

impl PlanDecision {
    /// Short machine-friendly kind tag (used as the trace event name).
    pub fn kind(&self) -> &'static str {
        match self {
            PlanDecision::Coalesced { .. } => "coalesce",
            PlanDecision::CoalesceBlocked { .. } => "coalesce blocked",
            PlanDecision::FoldedBase { .. } => "fold base",
            PlanDecision::FoldBlocked { .. } => "fold blocked",
            PlanDecision::LocalChain { .. } => "local chain",
            PlanDecision::SiteGroupReduction { .. } => "site group reduction",
            PlanDecision::SiteGroupReductionSuppressed { .. } => {
                "site group reduction suppressed"
            }
            PlanDecision::CoordGroupReduction { .. } => "coord group reduction",
        }
    }

    /// The stage this decision applies to, when stage-scoped.
    pub fn stage(&self) -> Option<&str> {
        match self {
            PlanDecision::LocalChain { stage, .. }
            | PlanDecision::SiteGroupReduction { stage }
            | PlanDecision::SiteGroupReductionSuppressed { stage, .. }
            | PlanDecision::CoordGroupReduction { stage, .. } => Some(stage),
            _ => None,
        }
    }
}

impl fmt::Display for PlanDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanDecision::Coalesced {
                ops_before,
                ops_after,
                rounds_saved,
            } => write!(
                f,
                "coalescing (Sect. 4.3): merged {ops_before} operator(s) into \
                 {ops_after}, saving {rounds_saved} round(s)"
            ),
            PlanDecision::CoalesceBlocked { reason } => {
                write!(f, "coalescing (Sect. 4.3) blocked: {reason}")
            }
            PlanDecision::FoldedBase { mechanism } => {
                write!(f, "base fold (Prop. 2): {mechanism}")
            }
            PlanDecision::FoldBlocked { reason } => {
                write!(f, "base fold (Prop. 2) blocked: {reason}")
            }
            PlanDecision::LocalChain {
                stage,
                ops,
                base_col,
                detail_col,
            } => write!(
                f,
                "{stage}: ops {}..{} chain locally (Thm. 5/Cor. 1) via \
                 b.{base_col} = r.{detail_col}",
                ops.start + 1,
                ops.end
            ),
            PlanDecision::SiteGroupReduction { stage } => write!(
                f,
                "{stage}: site-side group reduction (Prop. 1) — ship only \
                 matched groups"
            ),
            PlanDecision::SiteGroupReductionSuppressed { stage, reason } => write!(
                f,
                "{stage}: site-side group reduction (Prop. 1) suppressed: {reason}"
            ),
            PlanDecision::CoordGroupReduction {
                stage,
                restricted,
                skipped,
            } => write!(
                f,
                "{stage}: coordinator group reduction (Thm. 4) — \
                 {restricted} site(s) restricted, {skipped} skipped"
            ),
        }
    }
}

/// The coordinator-side group-reduction decision for one site in one stage.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteFilter {
    /// Ship the whole base structure.
    All,
    /// The site cannot contribute to this stage at all; skip it.
    Skip,
    /// Ship only base tuples satisfying this ¬ψ_i predicate.
    Predicate(Expr),
}

/// A maximal run of GMDJ operators executed in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Indexes into `plan.expr.ops` (consecutive).
    pub ops: Range<usize>,
    /// The shared detail relation of the unit's operators.
    pub table: String,
    /// Prop 2: sites compute their own base fragment from the detail
    /// relation instead of receiving B from the coordinator.
    pub fold_base: bool,
    /// Thm 5 / Cor 1: >1 operator evaluated locally with no intermediate
    /// synchronization; sites ship finalized aggregates for groups they own.
    pub local_chain: bool,
    /// The `(base column, detail column)` partition-attribute pair proving
    /// ownership for a local chain.
    pub ownership: Option<(String, String)>,
    /// Base-structure columns shipped down (empty when `fold_base`).
    pub ship_columns: Vec<String>,
    /// Per-site ¬ψ filters (length = number of sites).
    pub site_filters: Vec<SiteFilter>,
    /// Prop 1: sites return only groups with a non-empty local range.
    pub site_reduce: bool,
}

impl Unit {
    /// Number of operators in the unit.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false (units contain at least one operator).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What a stage does.
#[derive(Debug, Clone, PartialEq)]
pub enum StageKind {
    /// Sites evaluate the base query locally and ship distinct groups up.
    Base,
    /// Sites evaluate a unit of GMDJ operators.
    Unit(Unit),
}

/// One synchronization round.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Display label (`"base"`, `"gmdj 1"`, `"gmdj 1-2 (local)"`, …).
    pub label: String,
    /// The work.
    pub kind: StageKind,
}

/// A distributed evaluation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedPlan {
    /// The (possibly coalesced) GMDJ expression.
    pub expr: GmdjExpr,
    /// Key attributes K used for synchronization.
    pub key: Vec<String>,
    /// The rounds.
    pub stages: Vec<Stage>,
    /// Human-readable planner decisions.
    pub notes: Vec<String>,
}

impl DistributedPlan {
    /// Number of synchronization rounds.
    pub fn n_rounds(&self) -> usize {
        self.stages.len()
    }

    /// Structural sanity check before execution: unit op ranges lie within
    /// the expression, every unit carries one filter per site, chained
    /// units have ownership, and single-op invariants hold. Guards against
    /// hand-modified or corrupted plans panicking the runtime.
    pub fn check_structure(&self, n_sites: usize) -> skalla_relation::Result<()> {
        use skalla_relation::Error;
        for stage in &self.stages {
            let StageKind::Unit(u) = &stage.kind else {
                continue;
            };
            if u.ops.start >= u.ops.end || u.ops.end > self.expr.ops.len() {
                return Err(Error::Plan(format!(
                    "stage {:?}: op range {:?} outside expression of {} op(s)",
                    stage.label,
                    u.ops,
                    self.expr.ops.len()
                )));
            }
            if u.site_filters.len() != n_sites {
                return Err(Error::Plan(format!(
                    "stage {:?}: {} site filter(s) for {n_sites} site(s)",
                    stage.label,
                    u.site_filters.len()
                )));
            }
            if u.local_chain && u.ownership.is_none() {
                return Err(Error::Plan(format!(
                    "stage {:?}: local chain without an ownership attribute",
                    stage.label
                )));
            }
            if !u.local_chain && u.ops.len() != 1 {
                return Err(Error::Plan(format!(
                    "stage {:?}: non-chained unit with {} ops",
                    stage.label,
                    u.ops.len()
                )));
            }
            if u.fold_base
                && !matches!(self.expr.base, skalla_gmdj::BaseQuery::DistinctProject { .. })
            {
                return Err(Error::Plan(format!(
                    "stage {:?}: fold_base with a non-derivable base",
                    stage.label
                )));
            }
        }
        Ok(())
    }

    /// Render the plan for humans (the `EXPLAIN` output).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "DistributedPlan: {} round(s), key = ({})\n",
            self.n_rounds(),
            self.key.join(", ")
        ));
        for (i, st) in self.stages.iter().enumerate() {
            s.push_str(&format!("round {i}: {}\n", st.label));
            match &st.kind {
                StageKind::Base => {
                    s.push_str("  sites: evaluate base query, ship distinct groups\n");
                }
                StageKind::Unit(u) => {
                    s.push_str(&format!(
                        "  ops {:?} over {} ({} block(s))\n",
                        u.ops,
                        u.table,
                        self.expr.ops[u.ops.clone()]
                            .iter()
                            .map(|o| o.blocks.len())
                            .sum::<usize>()
                    ));
                    if u.fold_base {
                        s.push_str("  fold-base: sites derive groups locally (Prop 2)\n");
                    } else {
                        s.push_str(&format!(
                            "  ship down: columns ({})\n",
                            u.ship_columns.join(", ")
                        ));
                    }
                    if u.local_chain {
                        let (b, d) = u.ownership.as_ref().expect("chained unit has ownership");
                        s.push_str(&format!(
                            "  local chain via partition attribute b.{b} = r.{d} (Cor 1)\n"
                        ));
                    }
                    if u.site_reduce {
                        s.push_str("  site group reduction: ship only matched groups (Prop 1)\n");
                    }
                    let filtered = u
                        .site_filters
                        .iter()
                        .filter(|f| !matches!(f, SiteFilter::All))
                        .count();
                    if filtered > 0 {
                        s.push_str(&format!(
                            "  coordinator group reduction: {filtered} site(s) restricted (Thm 4)\n"
                        ));
                        for (i, f) in u.site_filters.iter().enumerate() {
                            match f {
                                SiteFilter::All => {}
                                SiteFilter::Skip => {
                                    s.push_str(&format!("    site {i}: skipped\n"))
                                }
                                SiteFilter::Predicate(p) => {
                                    s.push_str(&format!("    site {i}: ¬ψ = {p}\n"))
                                }
                            }
                        }
                    }
                }
            }
        }
        for n in &self.notes {
            s.push_str(&format!("note: {n}\n"));
        }
        s
    }
}

impl fmt::Display for DistributedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// The Egil query planner (distributed part): turns a GMDJ expression into
/// a [`DistributedPlan`] under the given optimization flags, using the
/// cluster's [`DistributionInfo`].
#[derive(Debug, Clone)]
pub struct Planner {
    dist: DistributionInfo,
    obs: Obs,
}

impl Planner {
    /// A planner with the given distribution knowledge.
    pub fn new(dist: DistributionInfo) -> Planner {
        Planner {
            dist,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle: every [`PlanDecision`] is also
    /// emitted as an optimizer-track event.
    pub fn with_obs(mut self, obs: Obs) -> Planner {
        self.obs = obs;
        self
    }

    /// The distribution knowledge in use.
    pub fn distribution(&self) -> &DistributionInfo {
        &self.dist
    }

    /// Build an optimized plan. Purely syntactic — never fails; any
    /// optimization whose preconditions cannot be proven is skipped (with
    /// a note), falling back to the safe general plan.
    pub fn optimize(&self, expr: &GmdjExpr, flags: OptFlags) -> DistributedPlan {
        self.optimize_with_decisions(expr, flags).0
    }

    /// [`Planner::optimize`], additionally returning the structured
    /// record of which rewrites fired or were blocked, and why.
    pub fn optimize_with_decisions(
        &self,
        expr: &GmdjExpr,
        flags: OptFlags,
    ) -> (DistributedPlan, Vec<PlanDecision>) {
        let _span = self.obs.span(Track::Optimizer, "optimize");
        let mut notes = Vec::new();
        let mut decisions: Vec<PlanDecision> = Vec::new();
        let n_sites = self.dist.n_sites();

        // 1. Coalescing.
        let expr = if flags.coalesce {
            let (merged, report) = coalesce_chain(expr);
            if report.rounds_saved() > 0 {
                notes.push(format!(
                    "coalesced {} operator(s) into {} (saved {} round(s))",
                    expr.ops.len(),
                    merged.ops.len(),
                    report.rounds_saved()
                ));
                decisions.push(PlanDecision::Coalesced {
                    ops_before: expr.ops.len(),
                    ops_after: merged.ops.len(),
                    rounds_saved: report.rounds_saved(),
                });
            } else if expr.ops.len() > 1 {
                decisions.push(PlanDecision::CoalesceBlocked {
                    reason: "no adjacent independent operators over the same detail table"
                        .to_string(),
                });
            }
            merged
        } else {
            expr.clone()
        };

        // 2. Key columns (syntactic).
        let base_columns = base_columns(&expr.base);
        let key = expr
            .key
            .clone()
            .unwrap_or_else(|| base_columns.clone());

        // 3. Per-op chainable partition pairs.
        let pairs: Vec<HashSet<(String, String)>> = expr
            .ops
            .iter()
            .map(|op| {
                let mut common: Option<HashSet<(String, String)>> = None;
                for block in &op.blocks {
                    let a = analyze_theta(&block.theta);
                    let set: HashSet<(String, String)> = a
                        .equi
                        .iter()
                        .filter(|(_, d)| self.dist.is_partition_attribute(&op.detail, d))
                        .cloned()
                        .collect();
                    common = Some(match common {
                        None => set,
                        Some(c) => c.intersection(&set).cloned().collect(),
                    });
                }
                common.unwrap_or_default()
            })
            .collect();

        // 4. Unit formation (greedy runs sharing a table and a pair).
        type UnitSketch = (Range<usize>, Option<(String, String)>);
        let mut units: Vec<UnitSketch> = Vec::new();
        let mut i = 0;
        while i < expr.ops.len() {
            let mut j = i + 1;
            let mut shared = pairs[i].clone();
            if flags.sync_reduction {
                while j < expr.ops.len() && expr.ops[j].detail == expr.ops[i].detail {
                    let next: HashSet<_> =
                        shared.intersection(&pairs[j]).cloned().collect();
                    if next.is_empty() {
                        break;
                    }
                    shared = next;
                    j += 1;
                }
            }
            let ownership = if j - i > 1 {
                let mut best: Vec<_> = shared.into_iter().collect();
                best.sort();
                Some(best.remove(0))
            } else {
                None
            };
            units.push((i..j, ownership));
            i = j;
        }

        // 5. Fold decision for the first unit (Prop 2).
        let mut fold_first = false;
        if flags.sync_reduction && !units.is_empty() {
            let (range, ownership) = &units[0];
            let first_op = &expr.ops[range.start];
            let base_matches = matches!(
                &expr.base,
                BaseQuery::DistinctProject { table, .. } if *table == first_op.detail
            );
            let key_is_base = key.len() == base_columns.len()
                && key.iter().all(|k| base_columns.contains(k));
            if base_matches && key_is_base {
                if ownership.is_some() {
                    // Chained unit: partition-attribute entailment suffices.
                    fold_first = true;
                    notes.push(
                        "folded base computation into round 1 (Prop 2 via partition attribute)"
                            .to_string(),
                    );
                    decisions.push(PlanDecision::FoldedBase {
                        mechanism: "chained unit: partition attribute entails θ_K".to_string(),
                    });
                } else {
                    // Single operator: every θ must entail θ_K.
                    let all_entail = first_op.blocks.iter().all(|b| {
                        let a = analyze_theta(&b.theta);
                        key.iter().all(|k| a.entails_key_equality(k, k))
                    });
                    if all_entail {
                        fold_first = true;
                        notes.push(
                            "folded base computation into round 1 (Prop 2: every θ entails θ_K)"
                                .to_string(),
                        );
                        decisions.push(PlanDecision::FoldedBase {
                            mechanism: "every θ entails θ_K".to_string(),
                        });
                    } else {
                        notes.push(
                            "Prop 2 fold not applicable: some θ does not entail θ_K".to_string(),
                        );
                        decisions.push(PlanDecision::FoldBlocked {
                            reason: "some θ does not entail θ_K".to_string(),
                        });
                    }
                }
            } else if !base_matches {
                decisions.push(PlanDecision::FoldBlocked {
                    reason: "base is not a distinct-project over the first operator's \
                             detail table"
                        .to_string(),
                });
            } else {
                decisions.push(PlanDecision::FoldBlocked {
                    reason: "synchronization key differs from the base columns".to_string(),
                });
            }
        }

        // 6. Assemble stages.
        let mut stages = Vec::new();
        let needs_base_stage =
            matches!(expr.base, BaseQuery::DistinctProject { .. }) && !fold_first;
        if needs_base_stage {
            stages.push(Stage {
                label: "base".to_string(),
                kind: StageKind::Base,
            });
        } else if matches!(expr.base, BaseQuery::Literal(_)) {
            notes.push("base relation is literal: held by the coordinator".to_string());
        }

        // Columns of B available before each op (syntactic).
        let mut avail: Vec<HashSet<String>> = Vec::with_capacity(expr.ops.len() + 1);
        avail.push(base_columns.iter().cloned().collect());
        for op in &expr.ops {
            let mut next = avail.last().expect("seeded").clone();
            next.extend(op.output_names().iter().map(|s| s.to_string()));
            avail.push(next);
        }

        for (uidx, (range, ownership)) in units.iter().enumerate() {
            let fold_base = uidx == 0 && fold_first;
            let table = expr.ops[range.start].detail.clone();
            let unit_ops = &expr.ops[range.clone()];
            let avail_in = &avail[range.start];

            // Internal outputs (produced within the unit).
            let internal: HashSet<String> = unit_ops
                .iter()
                .flat_map(|o| o.output_names())
                .map(str::to_string)
                .collect();

            // Columns to ship down: K ∪ external base refs.
            let mut ship: Vec<String> = key.clone();
            for op in unit_ops {
                for c in op.base_columns_used() {
                    if !internal.contains(&c) && !ship.contains(&c) {
                        ship.push(c);
                    }
                }
            }

            // Per-site ¬ψ filters.
            let site_filters: Vec<SiteFilter> = if flags.group_reduction_coord && !fold_base {
                (0..n_sites)
                    .map(|s| {
                        let domains = self.dist.domains(&table, s);
                        // Prefer the disjunction over all ops; fall back to
                        // the first op when derived filters reference
                        // unit-internal columns.
                        let candidates = [
                            Expr::disjunction(
                                unit_ops.iter().map(|o| o.any_theta()).collect(),
                            ),
                            unit_ops[0].any_theta(),
                        ];
                        for theta in &candidates {
                            match derive_base_constraint(theta, &domains) {
                                BaseConstraint::Unsatisfiable => return SiteFilter::Skip,
                                BaseConstraint::Filter(f) => {
                                    let refs = f.columns(Side::Base);
                                    if refs.iter().all(|c| avail_in.contains(c)) {
                                        return SiteFilter::Predicate(f);
                                    }
                                }
                                BaseConstraint::Unrestricted => {}
                            }
                        }
                        SiteFilter::All
                    })
                    .collect()
            } else {
                vec![SiteFilter::All; n_sites]
            };

            let local_chain = ownership.is_some();
            let label = if range.len() == 1 {
                format!("gmdj {}", range.start + 1)
            } else {
                format!("gmdj {}-{} (local chain)", range.start + 1, range.end)
            };

            if let Some((b, d)) = ownership {
                decisions.push(PlanDecision::LocalChain {
                    stage: label.clone(),
                    ops: range.clone(),
                    base_col: b.clone(),
                    detail_col: d.clone(),
                });
            }
            let site_reduce = flags.group_reduction_site && !fold_base && !local_chain;
            if site_reduce {
                decisions.push(PlanDecision::SiteGroupReduction {
                    stage: label.clone(),
                });
            } else if flags.group_reduction_site {
                decisions.push(PlanDecision::SiteGroupReductionSuppressed {
                    stage: label.clone(),
                    reason: if fold_base {
                        "fold-base already derives groups at the sites".to_string()
                    } else {
                        "local chain ships only owned groups".to_string()
                    },
                });
            }
            if flags.group_reduction_coord && !fold_base {
                let restricted = site_filters
                    .iter()
                    .filter(|f| matches!(f, SiteFilter::Predicate(_)))
                    .count();
                let skipped = site_filters
                    .iter()
                    .filter(|f| matches!(f, SiteFilter::Skip))
                    .count();
                if restricted + skipped > 0 {
                    decisions.push(PlanDecision::CoordGroupReduction {
                        stage: label.clone(),
                        restricted,
                        skipped,
                    });
                }
            }

            stages.push(Stage {
                label,
                kind: StageKind::Unit(Unit {
                    ops: range.clone(),
                    table,
                    fold_base,
                    local_chain,
                    ownership: ownership.clone(),
                    ship_columns: if fold_base { Vec::new() } else { ship },
                    site_filters,
                    // Site-side reduction is meaningless when the sites'
                    // shipped rows *are* the base structure (fold) or when
                    // ownership already restricts them (local chain).
                    site_reduce,
                }),
            });
        }

        if self.obs.is_recording() {
            for d in &decisions {
                self.obs
                    .event(Track::Optimizer, d.kind(), vec![("detail", d.to_string().into())]);
            }
        }

        (
            DistributedPlan {
                expr,
                key,
                stages,
                notes,
            },
            decisions,
        )
    }
}

/// The column names of the base-values relation (syntactic).
fn base_columns(base: &BaseQuery) -> Vec<String> {
    match base {
        BaseQuery::DistinctProject { columns, .. } => columns.clone(),
        BaseQuery::Literal(rel) => rel
            .schema()
            .column_names()
            .into_iter()
            .map(str::to_string)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_gmdj::prelude::*;
    use skalla_relation::{Domain, DomainMap};

    fn dist_with_partition_attr(n: usize) -> DistributionInfo {
        let mut d = DistributionInfo::new(n);
        let per: Vec<DomainMap> = (0..n)
            .map(|i| {
                DomainMap::new().with(
                    "g",
                    Domain::IntRange(10 * i as i64, 10 * i as i64 + 9),
                )
            })
            .collect();
        d.set_table("t", per);
        d
    }

    /// Paper Example 1 shape over table `t` with grouping column `g`.
    fn correlated_expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt1"), AggSpec::sum("v", "sum1")],
            ))
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"])
                    .and_detail_ge_base_expr("v", "sum1 / cnt1")
                    .build(),
                vec![AggSpec::count("cnt2")],
            ))
            .build()
    }

    #[test]
    fn unoptimized_plan_has_m_plus_1_rounds() {
        let planner = Planner::new(DistributionInfo::new(4));
        let plan = planner.optimize(&correlated_expr(), OptFlags::none());
        assert_eq!(plan.n_rounds(), 3);
        assert!(matches!(plan.stages[0].kind, StageKind::Base));
        for st in &plan.stages[1..] {
            let StageKind::Unit(u) = &st.kind else {
                panic!("expected unit")
            };
            assert!(!u.fold_base && !u.local_chain && !u.site_reduce);
            assert_eq!(u.site_filters, vec![SiteFilter::All; 4]);
        }
    }

    #[test]
    fn site_group_reduction_sets_flag() {
        let planner = Planner::new(DistributionInfo::new(2));
        let flags = OptFlags {
            group_reduction_site: true,
            ..OptFlags::none()
        };
        let plan = planner.optimize(&correlated_expr(), flags);
        let StageKind::Unit(u) = &plan.stages[1].kind else {
            panic!()
        };
        assert!(u.site_reduce);
    }

    #[test]
    fn coordinator_group_reduction_derives_filters() {
        let planner = Planner::new(dist_with_partition_attr(3));
        let flags = OptFlags {
            group_reduction_coord: true,
            ..OptFlags::none()
        };
        let plan = planner.optimize(&correlated_expr(), flags);
        let StageKind::Unit(u) = &plan.stages[1].kind else {
            panic!()
        };
        for (i, f) in u.site_filters.iter().enumerate() {
            let SiteFilter::Predicate(p) = f else {
                panic!("expected predicate for site {i}, got {f:?}")
            };
            let s = p.to_string();
            assert!(
                s.contains(&format!("{}", 10 * i)),
                "site {i} filter {s} mentions its range"
            );
        }
    }

    #[test]
    fn full_sync_reduction_single_round() {
        // Example 5: partition attribute + group-by on it → entire chain
        // evaluates locally with one synchronization.
        let planner = Planner::new(dist_with_partition_attr(4));
        let plan = planner.optimize(&correlated_expr(), OptFlags::sync_reduction_only());
        assert_eq!(plan.n_rounds(), 1, "{}", plan.explain());
        let StageKind::Unit(u) = &plan.stages[0].kind else {
            panic!()
        };
        assert!(u.fold_base);
        assert!(u.local_chain);
        assert_eq!(
            u.ownership,
            Some(("g".to_string(), "g".to_string()))
        );
        assert_eq!(u.ops, 0..2);
    }

    #[test]
    fn sync_reduction_without_partition_attr_folds_only() {
        // No distribution knowledge: Cor 1 cannot apply, but Prop 2 can
        // (θ of op 1 entails θ_K).
        let planner = Planner::new(DistributionInfo::new(4));
        let plan = planner.optimize(&correlated_expr(), OptFlags::sync_reduction_only());
        assert_eq!(plan.n_rounds(), 2, "{}", plan.explain());
        let StageKind::Unit(u0) = &plan.stages[0].kind else {
            panic!()
        };
        assert!(u0.fold_base && !u0.local_chain);
        let StageKind::Unit(u1) = &plan.stages[1].kind else {
            panic!()
        };
        assert!(!u1.fold_base);
    }

    #[test]
    fn fold_rejected_when_theta_lacks_key_equality() {
        // θ of op 1 groups only on part of the key.
        let expr = GmdjExprBuilder::distinct_base("t", &["g", "h"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let planner = Planner::new(DistributionInfo::new(2));
        let plan = planner.optimize(&expr, OptFlags::sync_reduction_only());
        assert_eq!(plan.n_rounds(), 2);
        assert!(matches!(plan.stages[0].kind, StageKind::Base));
    }

    #[test]
    fn coalescing_merges_independent_ops() {
        let expr = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c1")],
            ))
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c2")],
            ))
            .build();
        let planner = Planner::new(DistributionInfo::new(2));
        let plan = planner.optimize(&expr, OptFlags::coalesce_only());
        assert_eq!(plan.expr.ops.len(), 1);
        assert_eq!(plan.n_rounds(), 2); // base + one gmdj round
        assert!(plan.notes.iter().any(|n| n.contains("coalesced")));
    }

    #[test]
    fn ship_columns_include_key_and_external_refs_only() {
        let planner = Planner::new(DistributionInfo::new(2));
        let plan = planner.optimize(&correlated_expr(), OptFlags::none());
        let StageKind::Unit(u1) = &plan.stages[1].kind else {
            panic!()
        };
        assert_eq!(u1.ship_columns, vec!["g".to_string()]);
        let StageKind::Unit(u2) = &plan.stages[2].kind else {
            panic!()
        };
        // Round 2's θ references sum1/cnt1 — produced by round 1, external
        // to unit 2, so they must ship.
        assert!(u2.ship_columns.contains(&"g".to_string()));
        assert!(u2.ship_columns.contains(&"sum1".to_string()));
        assert!(u2.ship_columns.contains(&"cnt1".to_string()));
    }

    #[test]
    fn skip_site_when_theta_contradicts_phi() {
        // Query restricted to g IN (0..9) — only site 0 can contribute.
        let expr = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("g").le(Expr::lit(9i64)))
                    .build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let planner = Planner::new(dist_with_partition_attr(3));
        let flags = OptFlags {
            group_reduction_coord: true,
            ..OptFlags::none()
        };
        let plan = planner.optimize(&expr, flags);
        let StageKind::Unit(u) = &plan.stages[1].kind else {
            panic!()
        };
        assert!(matches!(u.site_filters[0], SiteFilter::Predicate(_)));
        assert!(matches!(u.site_filters[1], SiteFilter::Skip));
        assert!(matches!(u.site_filters[2], SiteFilter::Skip));
    }

    #[test]
    fn explain_mentions_decisions() {
        let planner = Planner::new(dist_with_partition_attr(4));
        let plan = planner.optimize(&correlated_expr(), OptFlags::all());
        let text = plan.explain();
        assert!(text.contains("local chain"), "{text}");
        assert!(text.contains("Prop 2"), "{text}");
    }

    #[test]
    fn decisions_cover_fired_rewrites() {
        let planner = Planner::new(dist_with_partition_attr(4));
        let (plan, decisions) =
            planner.optimize_with_decisions(&correlated_expr(), OptFlags::all());
        assert_eq!(plan.n_rounds(), 1);
        assert!(decisions
            .iter()
            .any(|d| matches!(d, PlanDecision::FoldedBase { .. })));
        assert!(decisions.iter().any(|d| matches!(
            d,
            PlanDecision::LocalChain { ops, .. } if *ops == (0..2)
        )));
        // Prop 1 is subsumed by the local chain, and that is recorded.
        assert!(decisions
            .iter()
            .any(|d| matches!(d, PlanDecision::SiteGroupReductionSuppressed { .. })));
        // Every decision renders and carries a kind tag.
        for d in &decisions {
            assert!(!d.kind().is_empty());
            assert!(!d.to_string().is_empty());
        }
    }

    #[test]
    fn decisions_record_blocked_rewrites() {
        let planner = Planner::new(DistributionInfo::new(2));
        let expr = GmdjExprBuilder::distinct_base("t", &["g", "h"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let (_, decisions) =
            planner.optimize_with_decisions(&expr, OptFlags::sync_reduction_only());
        assert!(decisions.iter().any(|d| matches!(
            d,
            PlanDecision::FoldBlocked { reason } if reason.contains("θ_K")
        )));
    }

    #[test]
    fn decisions_count_coord_reduction_sites() {
        let expr = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("g").le(Expr::lit(9i64)))
                    .build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let planner = Planner::new(dist_with_partition_attr(3));
        let flags = OptFlags {
            group_reduction_coord: true,
            ..OptFlags::none()
        };
        let (_, decisions) = planner.optimize_with_decisions(&expr, flags);
        assert!(decisions.iter().any(|d| matches!(
            d,
            PlanDecision::CoordGroupReduction {
                restricted: 1,
                skipped: 2,
                ..
            }
        )));
    }

    #[test]
    fn planner_emits_optimizer_events_when_observed() {
        use skalla_obs::Obs;
        let obs = Obs::recording();
        let planner = Planner::new(dist_with_partition_attr(4)).with_obs(obs.clone());
        let (_, decisions) =
            planner.optimize_with_decisions(&correlated_expr(), OptFlags::all());
        let rec = obs.recorder().unwrap();
        let events = rec.events();
        assert_eq!(events.len(), decisions.len());
        for (e, d) in events.iter().zip(&decisions) {
            assert_eq!(e.name, d.kind());
            assert_eq!(e.track, Track::Optimizer);
        }
        // The optimize pass itself is a closed span on the optimizer track.
        let spans = rec.spans();
        assert!(spans
            .iter()
            .any(|s| s.name == "optimize" && s.track == Track::Optimizer && s.dur_us.is_some()));
    }

    #[test]
    fn literal_base_has_no_base_stage() {
        use skalla_relation::{row, DataType, Schema};
        let groups = skalla_relation::Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64]],
        )
        .unwrap();
        let expr = GmdjExprBuilder::literal_base(groups)
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let planner = Planner::new(DistributionInfo::new(2));
        let plan = planner.optimize(&expr, OptFlags::none());
        assert_eq!(plan.n_rounds(), 1);
        assert!(matches!(plan.stages[0].kind, StageKind::Unit(_)));
    }

    #[test]
    fn different_detail_tables_break_units() {
        let expr = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c1")],
            ))
            .gmdj(Gmdj::new("u").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c2")],
            ))
            .build();
        let mut dist = dist_with_partition_attr(2);
        dist.set_table(
            "u",
            vec![
                DomainMap::new().with("g", Domain::IntRange(0, 9)),
                DomainMap::new().with("g", Domain::IntRange(10, 19)),
            ],
        );
        let planner = Planner::new(dist);
        let plan = planner.optimize(&expr, OptFlags::sync_reduction_only());
        // Two units (different tables); the first still folds.
        assert_eq!(plan.n_rounds(), 2);
    }
}
