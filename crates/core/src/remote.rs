//! Multi-process execution over the TCP transport.
//!
//! [`RemoteCluster`] is the coordinator side: it dials a set of site
//! processes (started with `skalla-cli site` or [`SiteServer`]), learns
//! their schemas and partition domains through the catalog handshake, and
//! then drives exactly the same coordinator algorithm as the in-process
//! [`crate::Cluster`] — the protocol logic is shared (the crate-private
//! `run_coordinator` in [`crate::cluster`]), so the two transports
//! produce bit-identical results and identical logical traffic
//! accounting by construction.
//!
//! Differences from the in-process runtime, by design:
//!
//! * **Per-site busy times are not reported on this legacy entry point**
//!   (`site_busy_s` stays 0 for [`RemoteCluster::execute`]): a serial
//!   session never sends the `QUERY_DONE` that triggers a site's
//!   accounting-exempt telemetry reply. The concurrent [`crate::Skalla`]
//!   engine *does* receive site-reported busy times over the remote
//!   backend, via [`crate::protocol::TAG_TELEMETRY`] frames that the
//!   transports exempt from byte accounting.
//! * **The catalog handshake is charged to a pre-query round** and sliced
//!   out of each query's [`crate::stats::ExecStats::net`], so the
//!   per-query rounds line up one-to-one with an in-process run.
//! * **One query per connection — on this legacy entry point only**:
//!   [`RemoteCluster::execute`] releases the sites with a shutdown
//!   broadcast (exactly like the in-process cluster releases its
//!   threads), which ends the TCP session; a [`SiteServer`] loops back
//!   to accept the next coordinator unless told to serve `--once`. The
//!   [`crate::Skalla`] engine instead holds one **persistent session**
//!   per site for its whole lifetime and multiplexes any number of
//!   (concurrent) queries over it by query id — new code should build a
//!   `Skalla` via [`crate::SkallaBuilder::remote`].

use crate::cluster::{net_err, run_coordinator};
use crate::distribution::DistributionInfo;
use crate::plan::DistributedPlan;
use crate::protocol::{self, SiteCatalogEntry};
use crate::site::site_session_loop;
use crate::stats::{ExecStats, QueryResult, StageTimes};
use skalla_gmdj::eval::EvalOptions;
use skalla_net::{CoordinatorTransport, SiteTransport, TcpConfig, TcpCoordinator, TcpSiteListener};
use skalla_obs::{Obs, Track};
use skalla_relation::{DomainMap, Error, Relation, Result, Schema};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the coordinator waits for each site's catalog reply.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(60);

/// What the catalog handshake learns: distribution knowledge, the
/// plan-validation catalog, and per-site row counts.
pub(crate) type HandshakeInfo = (DistributionInfo, HashMap<String, Arc<Relation>>, Vec<u64>);

/// Run the versioned catalog handshake over an established coordinator
/// transport: broadcast the catalog request (carrying
/// [`protocol::PROTOCOL_VERSION`]), collect every site's reply, and
/// assemble the coordinator's distribution knowledge, plan-validation
/// catalog, and per-site row counts — checking the sites agree on the
/// warehouse shape. Shared by [`RemoteCluster::connect`] and the
/// concurrent [`crate::warehouse::Skalla`] engine's remote backend.
///
/// Handshake traffic lands in the accounting's currently open round
/// (the pre-query "round 0"), which the callers slice off per-query
/// stats.
pub(crate) fn catalog_handshake(coord: &dyn CoordinatorTransport) -> Result<HandshakeInfo> {
    let n = coord.n_sites();
    coord
        .broadcast(&protocol::catalog_request())
        .map_err(net_err)?;
    let mut per_site: Vec<Option<Vec<SiteCatalogEntry>>> = vec![None; n];
    for _ in 0..n {
        let (site, msg) = coord.recv(HANDSHAKE_TIMEOUT).map_err(net_err)?;
        match msg.tag {
            protocol::TAG_CATALOG => {
                per_site[site] = Some(protocol::decode_catalog(&msg.payload)?);
            }
            protocol::TAG_ERROR => {
                return Err(Error::Execution(format!(
                    "site {site} rejected the catalog handshake: {}",
                    protocol::decode_error(&msg.payload)
                )));
            }
            t => {
                return Err(Error::Execution(format!(
                    "unexpected message tag {t} from site {site} during handshake"
                )));
            }
        }
    }
    // A misbehaving site can answer twice, leaving another site's slot
    // empty even after n receives — that's a protocol error, not a panic.
    let per_site: Vec<Vec<SiteCatalogEntry>> = per_site
        .into_iter()
        .enumerate()
        .map(|(site, e)| {
            e.ok_or_else(|| {
                Error::Execution(format!(
                    "site {site} never answered the catalog handshake (another \
                     site replied more than once)"
                ))
            })
        })
        .collect::<Result<_>>()?;

    let mut dist = DistributionInfo::new(n);
    let mut catalog: HashMap<String, Arc<Relation>> = HashMap::new();
    let mut rows_per_site = vec![0u64; n];
    for entry in &per_site[0] {
        let mut domains = Vec::with_capacity(n);
        for (site, entries) in per_site.iter().enumerate() {
            let here = entries
                .iter()
                .find(|e| e.table == entry.table)
                .ok_or_else(|| {
                    Error::Execution(format!(
                        "site {site} does not hold table {:?}",
                        entry.table
                    ))
                })?;
            if here.schema != entry.schema {
                return Err(Error::Execution(format!(
                    "site {site} disagrees on the schema of {:?}",
                    entry.table
                )));
            }
            domains.push(here.domains.clone());
            rows_per_site[site] += here.rows;
        }
        dist.set_table(entry.table.clone(), domains);
        catalog.insert(
            entry.table.clone(),
            Arc::new(Relation::new(entry.schema.clone(), Vec::new())?),
        );
    }
    for (site, entries) in per_site.iter().enumerate() {
        if entries.len() != per_site[0].len() {
            return Err(Error::Execution(format!(
                "site {site} advertises {} tables, site 0 advertises {}",
                entries.len(),
                per_site[0].len()
            )));
        }
    }
    Ok((dist, catalog, rows_per_site))
}

/// The coordinator's handle to a running multi-process cluster.
///
/// Connect with [`RemoteCluster::connect`], plan against
/// [`RemoteCluster::distribution`], then [`RemoteCluster::execute`] one
/// query (the shutdown broadcast that releases the sites ends the
/// session — reconnect for the next query).
pub struct RemoteCluster {
    coord: TcpCoordinator,
    dist: DistributionInfo,
    catalog: Arc<HashMap<String, Arc<Relation>>>,
    rows_per_site: Vec<u64>,
    eval: EvalOptions,
    timeout: Duration,
    chunk_rows: Option<usize>,
    obs: Obs,
}

impl std::fmt::Debug for RemoteCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut tables: Vec<&String> = self.catalog.keys().collect(); // lint: allow(unordered-iter) sorted on the next line
        tables.sort();
        f.debug_struct("RemoteCluster")
            .field("n_sites", &self.coord.n_sites())
            .field("tables", &tables)
            .finish()
    }
}

impl RemoteCluster {
    /// Dial every site (with the config's retry/backoff), then run the
    /// catalog handshake: each site describes its tables, schemas, and
    /// partition domains, from which the coordinator assembles its
    /// [`DistributionInfo`] and validation catalog. `addrs[i]` becomes
    /// site `i`; all sites must advertise the same tables and schemas.
    pub fn connect(addrs: &[String], cfg: &TcpConfig) -> Result<RemoteCluster> {
        if addrs.is_empty() {
            return Err(Error::Execution("a cluster needs at least one site".into()));
        }
        let coord = TcpCoordinator::connect(addrs, cfg).map_err(net_err)?;
        let (dist, catalog, rows_per_site) = catalog_handshake(&coord)?;

        Ok(RemoteCluster {
            coord,
            dist,
            catalog: Arc::new(catalog),
            rows_per_site,
            eval: EvalOptions::default(),
            timeout: Duration::from_secs(120),
            chunk_rows: None,
            obs: Obs::disabled(),
        })
    }

    /// Number of connected sites.
    pub fn n_sites(&self) -> usize {
        self.coord.n_sites()
    }

    /// Total rows each site reported in the handshake (diagnostics).
    pub fn rows_per_site(&self) -> &[u64] {
        &self.rows_per_site
    }

    /// The coordinator's distribution knowledge, learned from the
    /// handshake (feed this to [`crate::plan::Planner::new`]).
    pub fn distribution(&self) -> DistributionInfo {
        self.dist.clone()
    }

    /// Table schemas, as empty relations (plan-validation catalog).
    pub fn catalog(&self) -> &HashMap<String, Arc<Relation>> {
        &self.catalog
    }

    /// The handshake catalog as a shared handle (what
    /// [`crate::Warehouse::catalog`] hands out — no map clone).
    pub fn catalog_shared(&self) -> Arc<HashMap<String, Arc<Relation>>> {
        Arc::clone(&self.catalog)
    }

    /// Adopt an engine configuration: evaluation options (shipped to
    /// every site with the plan), round timeout, row-blocking chunk
    /// size, and observability handle (message events gain `transport:
    /// "tcp"`). The scheduler settings don't apply to this serial
    /// runtime (one query per session) and are ignored.
    pub fn configure(&mut self, cfg: &crate::warehouse::EngineConfig) -> &mut RemoteCluster {
        self.eval = cfg.eval;
        self.timeout = cfg.timeout;
        self.chunk_rows = cfg.chunk_rows.filter(|r| *r > 0);
        self.obs = cfg.obs.clone();
        self
    }

    /// Execute a distributed plan over the connected sites and return the
    /// result with full statistics — the same shape, round labels, and
    /// logical traffic accounting as [`crate::Cluster::execute`], except
    /// that per-site busy times are zero (see the module docs). Ends the
    /// session by releasing the sites.
    pub fn execute(&self, plan: &DistributedPlan) -> Result<QueryResult> {
        let n = self.n_sites();
        let wall_start = Instant::now();
        plan.check_structure(n)?;
        let schemas = plan.expr.validate(self.catalog.as_ref())?;
        let detail_schemas: HashMap<String, Schema> = self
            .catalog
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect();

        self.coord.stats().set_obs(self.obs.clone());
        let mut query_span = self
            .obs
            .span(Track::Coordinator, "query")
            .with("sites", n)
            .with("rounds", plan.n_rounds());

        // Rounds before this mark belong to the handshake, not the query.
        let mark = self.coord.stats().rounds().len();
        self.coord.stats().begin_round("plan");
        let plan_bytes =
            crate::plan_codec::encode_plan_with_options(plan, &self.eval, self.chunk_rows);
        let plan_msg = skalla_net::Message::new(protocol::TAG_PLAN, plan_bytes);
        let dispatch = self.coord.broadcast(&plan_msg).map_err(net_err);

        let run = dispatch.and_then(|()| {
            run_coordinator(
                &self.coord,
                plan,
                &schemas,
                &detail_schemas,
                &self.eval,
                self.timeout,
                &self.obs,
                Track::Coordinator,
                None,
                None,
            )
        });

        // Always release the sites, even on error.
        let _ = self.coord.broadcast(&protocol::shutdown());

        let (relation, mut stage_times) = run?;
        stage_times.insert(
            0,
            StageTimes {
                label: "plan".to_string(),
                site_busy_s: vec![0.0; n],
                ..StageTimes::default()
            },
        );
        let net = self.coord.stats().rounds().split_off(mark);
        query_span.arg("result_rows", relation.len());
        query_span.finish();
        Ok(QueryResult {
            relation,
            stats: ExecStats {
                stages: stage_times,
                net,
                wall_s: wall_start.elapsed().as_secs_f64(),
            },
        })
    }
}

/// A standalone warehouse site: a bound listener plus the site's local
/// tables and partition-domain descriptions. Each accepted coordinator
/// session is served to completion — catalog handshake (with protocol
/// version negotiation), then the [`site_session_loop`] demultiplexer
/// until shutdown or disconnect.
pub struct SiteServer {
    listener: TcpSiteListener,
    catalog: HashMap<String, Arc<Relation>>,
    entries: Vec<SiteCatalogEntry>,
    cfg: TcpConfig,
    obs: Obs,
}

impl std::fmt::Debug for SiteServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut tables: Vec<&String> = self.catalog.keys().collect(); // lint: allow(unordered-iter) sorted on the next line
        tables.sort();
        f.debug_struct("SiteServer")
            .field("tables", &tables)
            .finish()
    }
}

impl SiteServer {
    /// Bind `addr` (use port 0 for an ephemeral port, then
    /// [`SiteServer::local_addr`]). `domains` gives this site's φ
    /// description per table; tables without one advertise unconstrained
    /// domains.
    pub fn bind(
        addr: &str,
        catalog: HashMap<String, Arc<Relation>>,
        domains: HashMap<String, DomainMap>,
        cfg: TcpConfig,
    ) -> Result<SiteServer> {
        let listener = TcpSiteListener::bind(addr).map_err(net_err)?;
        let entries: Vec<SiteCatalogEntry> = catalog
            .iter()
            .map(|(table, rel)| SiteCatalogEntry {
                table: table.clone(),
                schema: rel.schema().clone(),
                domains: domains.get(table).cloned().unwrap_or_default(),
                rows: rel.len() as u64,
            })
            .collect();
        Ok(SiteServer {
            listener,
            catalog,
            entries,
            cfg,
            obs: Obs::disabled(),
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener.local_addr().map_err(net_err)
    }

    /// Attach an observability handle for site task spans.
    pub fn set_obs(&mut self, obs: Obs) -> &mut SiteServer {
        self.obs = obs;
        self
    }

    /// Accept one coordinator session and serve it to completion.
    /// Returns after the coordinator's shutdown broadcast (normal end of
    /// session) or when the link dies; either way the listener stays
    /// bound, so the caller may loop.
    ///
    /// The handshake read is **deadline-bounded** (the session's
    /// configured read timeout, capped at 60 s): a coordinator that
    /// connects and then disconnects — or goes silent — mid-handshake
    /// surfaces as a clean error here instead of blocking the accept
    /// loop forever on a half-open socket.
    ///
    /// After the handshake the session is served by
    /// [`crate::site::site_session_loop`], which demultiplexes frames to
    /// per-query workers by query id — so one persistent session carries
    /// any number of concurrent queries (a serial coordinator's frames
    /// all ride query id 0).
    pub fn serve_once(&self) -> Result<()> {
        let site = self.listener.accept(&self.cfg).map_err(net_err)?;
        // The handshake: a remote coordinator always asks for the catalog
        // before planning.
        let handshake_bound = self
            .cfg
            .read_timeout
            .map(|t| t.min(HANDSHAKE_TIMEOUT))
            .unwrap_or(HANDSHAKE_TIMEOUT);
        let first = site.recv_deadline(handshake_bound).map_err(net_err)?;
        if first.tag != protocol::TAG_CATALOG_REQ {
            let _ = site.send(protocol::error("expected a catalog request"));
            return Err(Error::Execution(format!(
                "expected catalog request, got message tag {}",
                first.tag
            )));
        }
        let version = protocol::decode_catalog_request(&first.payload)?;
        if version != protocol::PROTOCOL_VERSION {
            let detail = format!(
                "unsupported protocol version v{version} (this site speaks v{})",
                protocol::PROTOCOL_VERSION
            );
            let _ = site.send(protocol::error(&detail));
            return Err(Error::Execution(detail));
        }
        site.send(protocol::catalog(&self.entries))
            .map_err(net_err)?;
        // A standalone site owns its recorder, so it exports obs deltas
        // in its telemetry replies (the coordinator merges them into one
        // cross-process trace).
        site_session_loop(&self.catalog, Arc::new(site), true, &self.obs);
        Ok(())
    }

    /// Serve coordinator sessions forever (one at a time). A failed
    /// session — handshake violation, a coordinator disconnecting
    /// mid-handshake, link death — is logged to stderr and the server
    /// returns to accepting the next session.
    pub fn serve_forever(&self) -> Result<()> {
        loop {
            if let Err(e) = self.serve_once() {
                eprintln!("skalla site: session ended with error: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OptFlags, Planner};
    use skalla_gmdj::prelude::*;
    use skalla_relation::{row, DataType, Domain};

    fn fragments() -> Vec<(Relation, DomainMap)> {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, 10i64], row![1i64, 30i64], row![2i64, 5i64]],
        )
        .unwrap();
        let p1 = Relation::new(schema, vec![row![3i64, 7i64], row![3i64, 9i64]]).unwrap();
        vec![
            (p0, DomainMap::new().with("g", Domain::IntRange(1, 2))),
            (p1, DomainMap::new().with("g", Domain::IntRange(3, 3))),
        ]
    }

    fn expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
            ))
            .build()
    }

    fn spawn_sites(parts: Vec<(Relation, DomainMap)>) -> Vec<String> {
        let mut addrs = Vec::new();
        for (rel, dom) in parts {
            let catalog = HashMap::from([("t".to_string(), Arc::new(rel))]);
            let domains = HashMap::from([("t".to_string(), dom)]);
            let server =
                SiteServer::bind("127.0.0.1:0", catalog, domains, TcpConfig::default()).unwrap();
            addrs.push(server.local_addr().unwrap().to_string());
            std::thread::spawn(move || {
                let _ = server.serve_once();
            });
        }
        addrs
    }

    #[test]
    fn remote_cluster_learns_catalog_and_executes() {
        let addrs = spawn_sites(fragments());
        let rc = RemoteCluster::connect(&addrs, &TcpConfig::default()).unwrap();
        assert_eq!(rc.n_sites(), 2);
        assert_eq!(rc.rows_per_site(), &[3, 2]);
        // Distribution knowledge crossed the wire.
        assert!(rc.distribution().is_partition_attribute("t", "g"));
        let plan = Planner::new(rc.distribution()).optimize(&expr(), OptFlags::all());
        let out = rc.execute(&plan).unwrap();
        let sorted = out.relation.sorted_by(&["g"]).unwrap();
        assert_eq!(sorted.rows()[0], row![1i64, 2i64, 20.0]);
        assert_eq!(sorted.rows()[1], row![2i64, 1i64, 5.0]);
        assert_eq!(sorted.rows()[2], row![3i64, 2i64, 8.0]);
        // Per-query rounds only: plan + stages, no handshake round.
        assert_eq!(out.stats.stages[0].label, "plan");
        assert_eq!(out.stats.net.len(), out.stats.stages.len());
    }

    #[test]
    fn schema_disagreement_is_rejected() {
        let schema_a = Schema::of(&[("g", DataType::Int)]);
        let schema_b = Schema::of(&[("g", DataType::Str)]);
        let parts = vec![
            (Relation::new(schema_a, vec![]).unwrap(), DomainMap::new()),
            (Relation::new(schema_b, vec![]).unwrap(), DomainMap::new()),
        ];
        let addrs = spawn_sites(parts);
        let err = RemoteCluster::connect(&addrs, &TcpConfig::default()).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }
}
