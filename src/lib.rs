//! # Skalla — Distributed OLAP Query Processing
//!
//! A from-scratch Rust reproduction of the Skalla system from
//! *"Efficient OLAP Query Processing in Distributed Data Warehouses"*
//! (Akinde, Böhlen, Johnson, Lakshmanan, Srivastava, 2002).
//!
//! Skalla evaluates complex OLAP queries — expressed as chains of **GMDJ**
//! (Generalized Multi-Dimensional Join) operators — over a *distributed data
//! warehouse*: a set of local warehouse sites each holding a horizontal
//! partition of a fact relation, plus a coordinator. Only aggregate
//! structures are ever shipped between sites and the coordinator, never
//! detail data, which bounds synchronization traffic by the query result
//! size rather than the database size (Theorem 2 of the paper).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`relation`] — relational substrate: values, schemas, relations,
//!   expressions, interval analysis, binary codec.
//! * [`gmdj`] — the GMDJ operator algebra and the centralized evaluator.
//! * [`net`] — simulated network transport with exact byte accounting.
//! * [`obs`] — dependency-free span/event/metric recorder with
//!   Chrome-trace (Perfetto) export, wired through the planner, the
//!   cluster runtime, and the transport.
//! * [`datagen`] — seeded TPC-R-style and IP-flow data generators.
//! * [`core`] — the distributed engine: sites, coordinator,
//!   `GMDJDistribEval`, the optimization suite, and the Egil planner.
//! * [`query`] — a small OLAP query language compiled to GMDJ expressions.
//!
//! ## Quickstart
//!
//! ```
//! use skalla::core::{OptFlags, Skalla, plan::Planner};
//! use skalla::datagen::flow::{FlowConfig, generate_flows};
//! use skalla::datagen::partition::partition_by_int_ranges;
//! use skalla::gmdj::prelude::*;
//!
//! // Generate IP flow data and partition it across 4 sites by SourceAS.
//! let flows = generate_flows(&FlowConfig::small(7));
//! let parts = partition_by_int_ranges(&flows, "source_as", 4);
//!
//! // Query: per (SourceAS, DestAS), count flows and count flows whose
//! // byte volume exceeds the group average (paper Example 1).
//! let expr = GmdjExprBuilder::distinct_base("flow", &["source_as", "dest_as"])
//!     .gmdj(
//!         Gmdj::new("flow")
//!             .block(
//!                 ThetaBuilder::keys(&[("source_as", "source_as"), ("dest_as", "dest_as")]).build(),
//!                 vec![AggSpec::count("cnt1"), AggSpec::sum("num_bytes", "sum1")],
//!             ),
//!     )
//!     .gmdj(
//!         Gmdj::new("flow").block(
//!             ThetaBuilder::keys(&[("source_as", "source_as"), ("dest_as", "dest_as")])
//!                 .and_detail_ge_base_expr("num_bytes", "sum1 / cnt1")
//!                 .build(),
//!             vec![AggSpec::count("cnt2")],
//!         ),
//!     )
//!     .build();
//!
//! // One engine for every runtime: `partitions()` selects the in-process
//! // backend; `remote()` would dial standalone TCP site processes instead.
//! // The engine accepts concurrent `execute` calls from multiple threads.
//! let engine = Skalla::builder()
//!     .partitions("flow", parts)
//!     .build()
//!     .expect("engine builds");
//! let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());
//! let out = engine.execute(&plan).expect("query runs");
//! assert_eq!(out.relation.schema().column_names(),
//!            ["source_as", "dest_as", "cnt1", "sum1", "cnt2"]);
//! ```

pub use skalla_core as core;
pub use skalla_datagen as datagen;
pub use skalla_gmdj as gmdj;
pub use skalla_net as net;
pub use skalla_obs as obs;
pub use skalla_query as query;
pub use skalla_relation as relation;
