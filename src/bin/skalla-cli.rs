//! `skalla-cli` — run and explain distributed OLAP queries from the
//! command line.
//!
//! ```text
//! skalla-cli explain --dataset flow --sites 4 --opt all --query-file q.skl
//! skalla-cli run     --dataset tpcr --sites 8 --opt none -q "BASE …; MD …;"
//! skalla-cli run     --csv flow=flows.csv --types int,int,int --partition-by source_as …
//! skalla-cli gen     --dataset flow --rows 10000 --out flows.csv
//! ```
//!
//! Queries use the `skalla-query` language: a `BASE SELECT DISTINCT …`
//! statement followed by `MD name = AGG(expr), … OVER table WHERE θ;`
//! statements (unqualified columns are detail-side; `b.name` refers to the
//! base, including aggregates from earlier MD statements).

use skalla::core::{Cluster, OptFlags, Planner, SiteServer, Skalla, Warehouse};
use skalla::datagen::flow::{generate_flows, FlowConfig};
use skalla::datagen::partition::{observe_int_ranges, Partition};
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::net::CostModel;
use skalla::net::TcpConfig;
use skalla::obs::chrome::{metrics_snapshot, write_chrome_trace};
use skalla::obs::json::{self, Json};
use skalla::obs::serve::MetricsServer;
use skalla::obs::{Histogram, Obs};
use skalla::query;
use skalla::relation::{csv, DataType, DomainMap, Relation, Schema};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "run" => cmd_run(rest, true),
        "explain" => cmd_run(rest, false),
        "cube" => cmd_cube(rest),
        "gen" => cmd_gen(rest),
        "site" => cmd_site(rest),
        "net-probe" => cmd_net_probe(),
        "trace-check" => cmd_trace_check(rest),
        "http-get" => cmd_http_get(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
skalla-cli — distributed OLAP with GMDJ operators

USAGE:
  skalla-cli run     [data options] [--opt LEVEL] (-q QUERY | --query-file F) [--limit N]
  skalla-cli run     --sites ADDR,ADDR,… [tcp options] [--opt LEVEL] (-q … | --query-file F)
  skalla-cli explain [data options] [--opt LEVEL] (-q QUERY | --query-file F)
  skalla-cli cube    [data options] --dims C1,C2,… [--aggs SPEC,…] [--no-rollup]
  skalla-cli gen     --dataset flow|tpcr [--rows N] [--seed S] --out FILE.csv
  skalla-cli site    --listen ADDR --site-index I [data options] [tcp options] [--once]
  skalla-cli trace-check FILE.json   assert a merged Chrome trace has site-* spans
  skalla-cli http-get URL            fetch http://HOST:PORT/path and print the body

DATA OPTIONS (choose one source):
  --dataset flow|tpcr        built-in generator (default: flow)
  --rows N                   generated fact rows (default: 10000)
  --seed S                   generator seed (default: 42)
  --csv NAME=PATH            load a CSV file as table NAME
  --types t1,t2,…            column types for --csv (int|double|str)
  --partition-by COL         integer partition attribute (default: first column)
  --sites N                  number of warehouse sites (default: 4);
                             for `run`, a comma-separated address list instead
                             connects to standalone `skalla-cli site` processes

SITE (standalone warehouse site process):
  --listen ADDR              bind address, e.g. 127.0.0.1:7101 (port 0 = ephemeral;
                             prints `listening on HOST:PORT` once bound)
  --site-index I             which fragment of the partitioned data this site holds
  --once                     serve one coordinator session, then exit
  --metrics-listen ADDR      also serve live metrics over HTTP (see OBSERVABILITY)

TCP OPTIONS (run --sites / site):
  --net-timeout SECS         per-round receive timeout, and the site's idle
                             read timeout (default: 120)
  --connect-attempts N       coordinator dial attempts per site (default: 10)
  --connect-backoff-ms MS    initial retry backoff, doubling per attempt,
                             capped at 2s (default: 50)

QUERY OPTIONS:
  --opt all|none|coalesce|group-reduction|sync-reduction   (default: all)
  -q QUERY | --query-file F   the query text
  --limit N                   print at most N result rows (default: 20)
  --chunk N                   row blocking: ship results in chunks of N rows
  --threads N                 worker threads per site for the morsel-parallel
                              GMDJ kernel (default: available cores; 1 = serial)
  --morsel-rows N             detail rows per morsel (default: 65536; fixes the
                              accumulator merge structure, so output bits depend
                              on it; also SKALLA_MORSEL_ROWS)
  --no-columnar               evaluate with the row-at-a-time GMDJ kernel
                              instead of the vectorized columnar kernel
                              (ablation; same bits either way; also
                              SKALLA_COLUMNAR=0)
  --no-hash-path              disable the equi-key hash fast path and evaluate
                              θ by nested loops (ablation; same bits either
                              way; also SKALLA_HASH_PATH=0)
  --legacy-probe              use the legacy allocating probe instead of the
                              zero-allocation bucket index (ablation; same bits
                              either way; also SKALLA_LEGACY_PROBE=1)
  --fault-panic-morsel N      fault injection: panic the worker that starts
                              morsel N, to exercise error recovery (testing
                              only; also SKALLA_FAULT_MORSEL)
  --no-skew-balance           disable heavy-hitter skew balancing: sites
                              neither report hot group keys nor take on
                              loaned work (ablation; same bits either way;
                              also SKALLA_SKEW=0)
  --no-cache                  disable the semantic result cache: every
                              query pays its full site traffic, repeats
                              included (ablation; same bits either way;
                              also SKALLA_CACHE=0)
  --concurrency N             submit the query N times at once through the
                              multi-query scheduler; the copies share the
                              persistent site sessions and must agree
                              (default: 1)

CUBE OPTIONS:
  --dims C1,C2,…              cube dimensions (required)
  --aggs SPEC,…               aggregates: count | sum:COL | avg:COL | min:COL |
                              max:COL | var:COL | stddev:COL (default: count)
  --table NAME                fact table (default: the --csv name or --dataset)
  --no-rollup                 run one distributed query per grouping set
                              instead of rolling coarse levels up locally from
                              the finest level's sub-aggregates (ablation)

OBSERVABILITY:
  --trace FILE.json           (run) record spans/events and write a Chrome trace
                              merging the coordinator and every site's telemetry
                              into one timeline (load in Perfetto or
                              chrome://tracing)
  --metrics FILE.json         (run) write a flat counters/histograms snapshot
  --metrics-listen ADDR       (run/site) serve live metrics over HTTP while the
                              process runs: /metrics (Prometheus text),
                              /metrics.json, /trace.json. Port 0 = ephemeral;
                              prints `metrics listening on http://HOST:PORT`
  --metrics-linger SECS       (run) keep the metrics endpoint up for SECS
                              seconds after the query finishes (default: 0)
  --slow-query-log FILE       (run) append one JSON line per logged query:
                              timestamp, query text, wall seconds, full stats
  --slow-query-ms N           (run) only log queries slower than N ms
                              (default: 0 = log every query)";

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flags(args: &[String]) -> Result<OptFlags, String> {
    match opt(args, "--opt").as_deref().unwrap_or("all") {
        "all" => Ok(OptFlags::all()),
        "none" => Ok(OptFlags::none()),
        "coalesce" => Ok(OptFlags::coalesce_only()),
        "group-reduction" => Ok(OptFlags::group_reduction_only()),
        "sync-reduction" => Ok(OptFlags::sync_reduction_only()),
        other => Err(format!("unknown --opt {other:?}")),
    }
}

fn load_query(args: &[String]) -> Result<String, String> {
    if let Some(q) = opt(args, "-q") {
        return Ok(q);
    }
    if let Some(path) = opt(args, "--query-file") {
        return std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"));
    }
    Err("missing query: pass -q '…' or --query-file FILE".to_string())
}

/// Build the partitioned warehouse data from the data options: the fact
/// table's name and its per-site `(fragment, φ-domains)` pairs. Shared by
/// the in-process engine (`run`/`explain`) and the standalone `site`
/// command, so both construct byte-identical fragments from the same
/// flags.
fn build_partitions(args: &[String]) -> Result<(String, Vec<Partition>), String> {
    let sites: usize = opt(args, "--sites")
        .map(|s| s.parse().map_err(|e| format!("bad --sites: {e}")))
        .transpose()?
        .unwrap_or(4);
    if let Some(spec) = opt(args, "--csv") {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| "--csv expects NAME=PATH".to_string())?;
        let types: Vec<DataType> = opt(args, "--types")
            .ok_or_else(|| "--csv requires --types".to_string())?
            .split(',')
            .map(|t| match t.trim() {
                "int" => Ok(DataType::Int),
                "double" => Ok(DataType::Double),
                "str" => Ok(DataType::Str),
                other => Err(format!("unknown type {other:?}")),
            })
            .collect::<Result<_, String>>()?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let header = text.lines().next().ok_or_else(|| "empty CSV".to_string())?;
        let names: Vec<&str> = header.split(',').collect();
        if names.len() != types.len() {
            return Err(format!(
                "{} columns in header but {} in --types",
                names.len(),
                types.len()
            ));
        }
        let schema = Schema::of(
            &names
                .iter()
                .zip(&types)
                .map(|(n, t)| (*n, *t))
                .collect::<Vec<_>>(),
        );
        let rel = csv::from_csv(&text, schema).map_err(|e| e.to_string())?;
        let pcol = opt(args, "--partition-by").unwrap_or_else(|| names[0].to_string());
        let parts = skalla::datagen::partition::try_partition_by_int_ranges(&rel, &pcol, sites)
            .map_err(|e| e.to_string())?;
        println!(
            "loaded {} rows into table {name:?}, partitioned on {pcol} across {sites} site(s)",
            rel.len()
        );
        return Ok((name.to_string(), parts));
    }

    let rows: usize = opt(args, "--rows")
        .map(|s| s.parse().map_err(|e| format!("bad --rows: {e}")))
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    match opt(args, "--dataset").as_deref().unwrap_or("flow") {
        "flow" => {
            let flows = generate_flows(&FlowConfig::new(rows, seed));
            let pcol = opt(args, "--partition-by").unwrap_or_else(|| "source_as".into());
            let parts =
                skalla::datagen::partition::try_partition_by_int_ranges(&flows, &pcol, sites)
                    .map_err(|e| e.to_string())?;
            println!("generated {rows} flows, partitioned on {pcol} across {sites} site(s)");
            Ok(("flow".to_string(), parts))
        }
        "tpcr" => {
            let tpcr = generate_tpcr(&TpcrConfig::new(rows, seed));
            let pcol = opt(args, "--partition-by").unwrap_or_else(|| "nation_key".into());
            let mut parts =
                skalla::datagen::partition::try_partition_by_int_ranges(&tpcr, &pcol, sites)
                    .map_err(|e| e.to_string())?;
            if pcol == "nation_key" {
                observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
            }
            println!("generated {rows} TPCR rows, partitioned on {pcol} across {sites} site(s)");
            Ok(("tpcr".to_string(), parts))
        }
        other => Err(format!("unknown --dataset {other:?}")),
    }
}

/// The `site` command needs a concrete [`Cluster`] to slice one
/// fragment's catalog and φ-domains out of.
fn build_cluster(args: &[String]) -> Result<Cluster, String> {
    let (table, parts) = build_partitions(args)?;
    Ok(Cluster::from_partitions(table, parts))
}

/// Build a [`TcpConfig`] from the `--net-timeout`, `--connect-attempts`,
/// and `--connect-backoff-ms` flags (defaults otherwise).
fn tcp_config(args: &[String]) -> Result<TcpConfig, String> {
    let mut cfg = TcpConfig::default();
    if let Some(s) = opt(args, "--net-timeout") {
        let secs: u64 = s.parse().map_err(|e| format!("bad --net-timeout: {e}"))?;
        cfg.read_timeout = Some(Duration::from_secs(secs));
    }
    if let Some(s) = opt(args, "--connect-attempts") {
        cfg.connect_attempts = s
            .parse()
            .map_err(|e| format!("bad --connect-attempts: {e}"))?;
        if cfg.connect_attempts == 0 {
            return Err("--connect-attempts must be at least 1".to_string());
        }
    }
    if let Some(s) = opt(args, "--connect-backoff-ms") {
        let ms: u64 = s
            .parse()
            .map_err(|e| format!("bad --connect-backoff-ms: {e}"))?;
        cfg.backoff_base = Duration::from_millis(ms);
    }
    Ok(cfg)
}

/// Build the engine behind `run`/`explain` through [`Skalla::builder`],
/// interpreting `--sites`: a bare number means an in-process warehouse of
/// that many sites; anything else is a comma-separated `HOST:PORT` list
/// of standalone `skalla-cli site` processes to connect to. Everything
/// downstream (planning, execution, stats printing) dispatches through
/// the [`Warehouse`] trait, so the two runtimes share one code path.
fn build_engine(args: &[String], obs: Obs) -> Result<Box<dyn Warehouse>, String> {
    let mut builder = Skalla::builder().obs(obs);
    if let Some(chunk) = opt(args, "--chunk") {
        let n: usize = chunk.parse().map_err(|e| format!("bad --chunk: {e}"))?;
        builder = builder.chunk_rows(Some(n));
    }
    let mut eval = skalla::gmdj::EvalOptions::default();
    let mut eval_set = false;
    if let Some(threads) = opt(args, "--threads") {
        let n: usize = threads.parse().map_err(|e| format!("bad --threads: {e}"))?;
        if n == 0 {
            return Err("--threads must be at least 1 (omit for auto)".to_string());
        }
        eval.parallelism = n;
        eval_set = true;
    }
    if let Some(rows) = opt(args, "--morsel-rows") {
        let n: usize = rows.parse().map_err(|e| format!("bad --morsel-rows: {e}"))?;
        if n == 0 {
            return Err("--morsel-rows must be at least 1".to_string());
        }
        eval.morsel_rows = n;
        eval_set = true;
    }
    if args.iter().any(|a| a == "--no-columnar") {
        eval.columnar = false;
        eval_set = true;
    }
    if args.iter().any(|a| a == "--no-hash-path") {
        eval.hash_path = false;
        eval_set = true;
    }
    if args.iter().any(|a| a == "--legacy-probe") {
        eval.legacy_probe = true;
        eval_set = true;
    }
    if args.iter().any(|a| a == "--no-skew-balance") {
        eval.skew_balance = false;
        eval_set = true;
    }
    if args.iter().any(|a| a == "--no-cache") {
        eval.cache = false;
        eval_set = true;
    }
    if let Some(m) = opt(args, "--fault-panic-morsel") {
        let n: usize = m.parse().map_err(|e| format!("bad --fault-panic-morsel: {e}"))?;
        eval.fault_panic_morsel = Some(n);
        eval_set = true;
    }
    if eval_set {
        builder = builder.eval_options(eval);
    }
    if let Some(c) = opt(args, "--concurrency") {
        let n: usize = c.parse().map_err(|e| format!("bad --concurrency: {e}"))?;
        if n == 0 {
            return Err("--concurrency must be at least 1".to_string());
        }
        builder = builder.max_concurrent(n);
    }

    let remote_list = opt(args, "--sites").filter(|s| s.parse::<usize>().is_err());
    if let Some(list) = remote_list {
        let addrs: Vec<String> = list
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if addrs.is_empty() || addrs.iter().any(|a| !a.contains(':')) {
            return Err(format!(
                "--sites {list:?} is neither a site count nor a comma-separated HOST:PORT list"
            ));
        }
        let cfg = tcp_config(args)?;
        if let Some(t) = cfg.read_timeout {
            builder = builder.timeout(t);
        }
        let engine = builder.remote(&addrs, cfg).build().map_err(|e| e.to_string())?;
        println!("connected to {} remote site(s)", engine.n_sites());
        Ok(Box::new(engine))
    } else {
        let (table, parts) = build_partitions(args)?;
        let engine = builder
            .partitions(table, parts)
            .build()
            .map_err(|e| e.to_string())?;
        Ok(Box::new(engine))
    }
}

fn cmd_run(args: &[String], execute: bool) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let text = load_query(args)?;
    let trace_path = opt(args, "--trace");
    let metrics_path = opt(args, "--metrics");
    let metrics_listen = opt(args, "--metrics-listen");
    let metrics_linger: u64 = opt(args, "--metrics-linger")
        .map(|s| s.parse().map_err(|e| format!("bad --metrics-linger: {e}")))
        .transpose()?
        .unwrap_or(0);
    let slow_log_path = opt(args, "--slow-query-log");
    let slow_query_ms: f64 = opt(args, "--slow-query-ms")
        .map(|s| s.parse().map_err(|e| format!("bad --slow-query-ms: {e}")))
        .transpose()?
        .unwrap_or(0.0);
    let concurrency: usize = opt(args, "--concurrency")
        .map(|s| s.parse().map_err(|e| format!("bad --concurrency: {e}")))
        .transpose()?
        .unwrap_or(1);
    let record = execute
        && (trace_path.is_some() || metrics_path.is_some() || metrics_listen.is_some());
    let obs = if record { Obs::recording() } else { Obs::disabled() };
    // The coordinator claims process lane 1 in merged traces; imported
    // site telemetry lands on lanes 2+ (see `Skalla::execute`).
    if let Some(rec) = obs.recorder() {
        rec.set_process(1, "coordinator");
    }
    // Bind the live endpoint before the query runs so scrapers can watch
    // the scheduler gauges move while work is in flight.
    let metrics_server = match (&metrics_listen, obs.recorder()) {
        (Some(addr), Some(rec)) => {
            let server = MetricsServer::bind(addr, Arc::clone(rec))
                .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
            // Parsed by scripts (and ci.sh) to discover ephemeral ports.
            println!("metrics listening on http://{}", server.local_addr());
            Some(server)
        }
        _ => None,
    };
    let engine = build_engine(args, obs.clone())?;

    let expr = query::compile_text(&text).map_err(|e| e.to_string())?;
    let planner = Planner::new(engine.distribution()).with_obs(obs.clone());
    let (plan, decisions) = planner.optimize_with_decisions(&expr, flags);
    println!("\n{}", plan.explain());
    if !decisions.is_empty() {
        println!("=== optimizer decisions ===");
        for d in &decisions {
            println!("{d}");
        }
        println!();
    }
    if !execute {
        return Ok(());
    }

    // With --concurrency N > 1, submit the same query N times at once:
    // the scheduler admits them concurrently and multiplexes their rounds
    // over the shared per-site sessions. All copies must agree.
    let started = std::time::Instant::now();
    let mut results = Vec::new();
    if concurrency > 1 {
        let outs = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|_| scope.spawn(|| engine.execute(&plan)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .collect::<Vec<_>>()
        });
        for out in outs {
            results.push(out.map_err(|e| e.to_string())?);
        }
    } else {
        results.push(engine.execute(&plan).map_err(|e| e.to_string())?);
    }
    let concurrent_wall = started.elapsed().as_secs_f64();
    for other in &results[1..] {
        if !other.relation.same_bag(&results[0].relation) {
            return Err("concurrent copies of the query disagree on the result".to_string());
        }
    }
    let out = &results[0];
    let limit: usize = opt(args, "--limit")
        .map(|s| s.parse().map_err(|e| format!("bad --limit: {e}")))
        .transpose()?
        .unwrap_or(20);

    println!("=== result ({} groups) ===", out.relation.len());
    let shown = Relation::from_shared(
        out.relation.schema_ref(),
        out.relation.rows().iter().take(limit).cloned().collect(),
    );
    print!("{}", csv::to_csv(&shown));
    if out.relation.len() > limit {
        println!(
            "… ({} more rows; raise --limit)",
            out.relation.len() - limit
        );
    }

    let stats = &out.stats;
    let (down, up) = stats.total_rows();
    let sim = stats.simulated(&CostModel::lan());
    println!("\n=== execution ===");
    println!("rounds:          {}", stats.n_rounds());
    println!(
        "bytes:           {} down / {} up",
        stats.bytes_down(),
        stats.bytes_up()
    );
    println!("group rows:      {down} down / {up} up (detail rows shipped: 0)");
    println!(
        "simulated (LAN): {:.4}s = site {:.4} + coordinator {:.4} + network {:.4}",
        sim.total_s(),
        sim.site_s,
        sim.coord_s,
        sim.comm_s
    );
    println!("wall clock:      {:.4}s", stats.wall_s);
    if concurrency > 1 {
        let serial_sum: f64 = results.iter().map(|r| r.stats.wall_s).sum();
        let mut lat = Histogram::default();
        for r in &results {
            lat.record(r.stats.wall_s);
        }
        println!("\n=== concurrency ===");
        println!("queries:         {concurrency} (identical results)");
        println!("combined wall:   {concurrent_wall:.4}s (sum of per-query walls: {serial_sum:.4}s)");
        println!(
            "latency:         p50 {:.4}s p95 {:.4}s p99 {:.4}s (n={})",
            lat.percentile(50.0),
            lat.percentile(95.0),
            lat.percentile(99.0),
            lat.count()
        );
        for (i, r) in results.iter().enumerate() {
            println!(
                "  query {i}: {} rounds, {} B down / {} B up, {:.4}s",
                r.stats.n_rounds(),
                r.stats.bytes_down(),
                r.stats.bytes_up(),
                r.stats.wall_s
            );
        }
    }
    println!("\n=== per-round timeline ===");
    print!("{}", stats.round_table());

    if let Some(rec) = obs.recorder() {
        if let Some(path) = &trace_path {
            std::fs::write(path, write_chrome_trace(rec))
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("\nwrote Chrome trace to {path} (open in Perfetto or chrome://tracing)");
        }
        if let Some(path) = &metrics_path {
            std::fs::write(path, metrics_snapshot(rec).to_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote metrics snapshot to {path}");
        }
    }

    // Slow-query log: one JSON line per query at or above the threshold
    // (threshold 0 logs everything). Appends, so a long-lived script can
    // accumulate a history across runs and feed it to jq or an indexer.
    if let Some(path) = &slow_log_path {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut lines = String::new();
        let mut logged = 0usize;
        for r in &results {
            if r.stats.wall_s * 1000.0 < slow_query_ms {
                continue;
            }
            Json::obj(vec![
                ("ts_unix_us", Json::UInt(ts)),
                ("query", Json::Str(text.clone())),
                ("wall_s", Json::Float(r.stats.wall_s)),
                ("threshold_ms", Json::Float(slow_query_ms)),
                ("stats", r.stats.to_json()),
            ])
            .write(&mut lines);
            lines.push('\n');
            logged += 1;
        }
        if logged > 0 {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("opening {path}: {e}"))?;
            f.write_all(lines.as_bytes())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
        println!(
            "slow-query log: {logged} of {} quer{} at or above {slow_query_ms}ms → {path}",
            results.len(),
            if results.len() == 1 { "y" } else { "ies" },
        );
    }

    // Keep the live endpoint up after the query so one-shot runs can
    // still be scraped (ci.sh probes it during this window).
    if let Some(server) = &metrics_server {
        if metrics_linger > 0 {
            println!(
                "metrics endpoint lingering {metrics_linger}s at http://{}",
                server.local_addr()
            );
            std::thread::sleep(Duration::from_secs(metrics_linger));
        }
    }
    Ok(())
}

/// `skalla-cli site`: run one warehouse site as a standalone process.
///
/// The site builds the *same* deterministic partitioned warehouse as an
/// in-process run with identical data options (same generator, seed, and
/// partitioner), then keeps only its own fragment (`--site-index`). Start
/// one process per site with the same data options and pass their
/// addresses to `skalla-cli run --sites`; results and recorded traffic
/// match the in-process cluster exactly.
/// Parse `--aggs count,sum:COL,…` into named [`skalla::gmdj::AggSpec`]s.
fn parse_cube_aggs(spec: &str) -> Result<Vec<skalla::gmdj::AggSpec>, String> {
    use skalla::gmdj::AggSpec;
    let mut aggs = Vec::new();
    for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let agg = match item.split_once(':').map(|(f, c)| (f.trim(), c.trim())) {
            None if item == "count" => AggSpec::count("count"),
            Some(("sum", c)) => AggSpec::sum(c, format!("sum_{c}")),
            Some(("avg", c)) => AggSpec::avg(c, format!("avg_{c}")),
            Some(("min", c)) => AggSpec::min(c, format!("min_{c}")),
            Some(("max", c)) => AggSpec::max(c, format!("max_{c}")),
            Some(("var", c)) => AggSpec::var(c, format!("var_{c}")),
            Some(("stddev", c)) => AggSpec::stddev(c, format!("stddev_{c}")),
            _ => {
                return Err(format!(
                    "bad --aggs item {item:?} (count | sum:COL | avg:COL | min:COL \
                     | max:COL | var:COL | stddev:COL)"
                ))
            }
        };
        aggs.push(agg);
    }
    Ok(aggs)
}

/// `CUBE BY` over the fact table: the finest grouping set runs as one
/// distributed query with decomposed sub-aggregates; every coarser level
/// is rolled up locally (disable with `--no-rollup` to run one query per
/// grouping set). Prints the per-level provenance table.
fn cmd_cube(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let dims_spec = opt(args, "--dims").ok_or_else(|| "cube needs --dims C1,C2,…".to_string())?;
    let dims: Vec<String> = dims_spec
        .split(',')
        .map(|d| d.trim().to_string())
        .filter(|d| !d.is_empty())
        .collect();
    let dim_refs: Vec<&str> = dims.iter().map(String::as_str).collect();
    let aggs = parse_cube_aggs(&opt(args, "--aggs").unwrap_or_else(|| "count".to_string()))?;
    let rollup = !args.iter().any(|a| a == "--no-rollup");
    let table = opt(args, "--table")
        .or_else(|| {
            opt(args, "--csv").and_then(|s| s.split_once('=').map(|(n, _)| n.to_string()))
        })
        .or_else(|| opt(args, "--dataset"))
        .unwrap_or_else(|| "flow".to_string());

    let engine = build_engine(args, Obs::disabled())?;
    let result = query::cube_with_rollup(&*engine, &table, &dim_refs, &aggs, flags, rollup)
        .map_err(|e| e.to_string())?;

    println!("\n=== grouping sets ===");
    print!("{}", query::render_cube_levels(&result));

    let limit: usize = opt(args, "--limit")
        .map(|s| s.parse().map_err(|e| format!("bad --limit: {e}")))
        .transpose()?
        .unwrap_or(20);
    println!("\n=== cube ({} rows) ===", result.relation.len());
    let shown = Relation::from_shared(
        result.relation.schema_ref(),
        result.relation.rows().iter().take(limit).cloned().collect(),
    );
    print!("{}", csv::to_csv(&shown));
    if result.relation.len() > limit {
        println!(
            "… ({} more rows; raise --limit)",
            result.relation.len() - limit
        );
    }
    Ok(())
}

fn cmd_site(args: &[String]) -> Result<(), String> {
    let listen = opt(args, "--listen").ok_or_else(|| "missing --listen ADDR".to_string())?;
    let index: usize = opt(args, "--site-index")
        .map(|s| s.parse().map_err(|e| format!("bad --site-index: {e}")))
        .transpose()?
        .unwrap_or(0);
    let cluster = build_cluster(args)?;
    if index >= cluster.n_sites() {
        return Err(format!(
            "--site-index {index} out of range for {} site(s)",
            cluster.n_sites()
        ));
    }
    let catalog: HashMap<String, Arc<Relation>> = cluster.site_catalog(index).clone();
    let dist = cluster.distribution();
    let domains: HashMap<String, DomainMap> = catalog
        .keys()
        .map(|table| (table.clone(), dist.domains(table, index)))
        .collect();
    let mut server = SiteServer::bind(&listen, catalog, domains, tcp_config(args)?)
        .map_err(|e| e.to_string())?;
    // A standalone site always records: its spans and counters ship to
    // the coordinator in telemetry frames after every query, so a `run
    // --trace` against this site sees its work merged into one timeline.
    // Process lane `2 + index` matches the lane the coordinator assigns
    // on import; the name labels this lane in Perfetto.
    let obs = Obs::recording();
    if let Some(rec) = obs.recorder() {
        rec.set_process(2 + index as u32, format!("site-{index}"));
    }
    server.set_obs(obs.clone());
    let _metrics_server = match (opt(args, "--metrics-listen"), obs.recorder()) {
        (Some(addr), Some(rec)) => {
            let ms = MetricsServer::bind(&addr, Arc::clone(rec))
                .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
            println!("metrics listening on http://{}", ms.local_addr());
            Some(ms)
        }
        _ => None,
    };
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Parsed by scripts (and ci.sh) to discover ephemeral ports — flush so
    // it is visible even through a pipe.
    println!("site {index} listening on {addr}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if args.iter().any(|a| a == "--once") {
        server.serve_once().map_err(|e| e.to_string())
    } else {
        server.serve_forever().map_err(|e| e.to_string())
    }
}

/// `skalla-cli net-probe`: verify loopback TCP sockets work in this
/// environment (bind an ephemeral port, connect, accept). Exit status is
/// the answer; CI uses it to skip the multi-process smoke test gracefully
/// in sandboxes without network namespaces.
fn cmd_net_probe() -> Result<(), String> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let _client = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect: {e}"))?;
    let _server = listener.accept().map_err(|e| format!("accept: {e}"))?;
    println!("loopback sockets ok");
    Ok(())
}

/// `skalla-cli trace-check FILE.json`: assert a merged Chrome trace
/// really contains site-side work — at least one complete span (`"X"`)
/// on a process lane whose `process_name` metadata starts with `site-`.
/// Exit status is the answer; CI uses it to verify that a distributed
/// run's telemetry made it back to the coordinator and into the trace.
fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .ok_or_else(|| "usage: trace-check FILE.json".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no traceEvents array — not a Chrome trace"))?;

    // Process lanes are named by "M" metadata records:
    //   {"ph":"M","pid":P,"name":"process_name","args":{"name":"site-0"}}
    let mut lanes: HashMap<u64, String> = HashMap::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("M")
            && ev.get("name").and_then(Json::as_str) == Some("process_name")
        {
            if let (Some(pid), Some(name)) = (
                ev.get("pid").and_then(Json::as_u64),
                ev.get("args").and_then(|a| a.get("name")).and_then(Json::as_str),
            ) {
                lanes.insert(pid, name.to_string());
            }
        }
    }
    let mut spans_per_lane: HashMap<u64, usize> = HashMap::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("X") {
            if let Some(pid) = ev.get("pid").and_then(Json::as_u64) {
                *spans_per_lane.entry(pid).or_default() += 1;
            }
        }
    }
    let mut named: Vec<(&u64, &String)> = lanes.iter().collect();
    named.sort();
    for (pid, name) in &named {
        println!(
            "process {pid} ({name}): {} span(s)",
            spans_per_lane.get(pid).copied().unwrap_or(0)
        );
    }
    let site_spans: usize = named
        .iter()
        .filter(|(_, name)| name.starts_with("site-"))
        .map(|(pid, _)| spans_per_lane.get(pid).copied().unwrap_or(0))
        .sum();
    if !lanes.values().any(|n| n == "coordinator") {
        return Err(format!("{path}: no process lane named \"coordinator\""));
    }
    if site_spans == 0 {
        return Err(format!(
            "{path}: no spans on any site-* process lane — site telemetry missing"
        ));
    }
    println!("ok: {site_spans} span(s) across site-* lanes");
    Ok(())
}

/// `skalla-cli http-get URL`: minimal HTTP/1.0 GET over a raw socket,
/// printing the response body. Exists so ci.sh can probe the
/// `--metrics-listen` endpoint without depending on curl or wget.
fn cmd_http_get(args: &[String]) -> Result<(), String> {
    let url = args
        .first()
        .ok_or_else(|| "usage: http-get http://HOST:PORT/path".to_string())?;
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("{url:?}: only http:// URLs are supported"))?;
    let (host, path) = match rest.split_once('/') {
        Some((h, p)) => (h, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(host).map_err(|e| format!("connect {host}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response (no header terminator)".to_string())?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{url}: {status}"));
    }
    print!("{body}");
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let rows: usize = opt(args, "--rows")
        .map(|s| s.parse().map_err(|e| format!("bad --rows: {e}")))
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let out = opt(args, "--out").ok_or_else(|| "missing --out FILE.csv".to_string())?;
    let rel = match opt(args, "--dataset").as_deref().unwrap_or("flow") {
        "flow" => generate_flows(&FlowConfig::new(rows, seed)),
        "tpcr" => generate_tpcr(&TpcrConfig::new(rows, seed)),
        other => return Err(format!("unknown --dataset {other:?}")),
    };
    std::fs::write(&out, csv::to_csv(&rel)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} rows to {out}", rel.len());
    Ok(())
}
